"""Framed messages over sockets — the repro.net wire format (protocol v2).

Every message on a :mod:`repro.net` connection is one *frame*:

.. code-block:: text

    +-------+---------+-------+----------+-----------+-----------+------+
    | magic | version | flags | kind len | n entries | table len | meta |
    | 4 B   | u16     | u16   | u16      | u16       | u32       | len  |
    |       |         |       |          |           |           | u64  |
    +-------+---------+-------+----------+-----------+-----------+------+
    | kind (UTF-8) | buffer table (pickled) | metadata (pickle-5) |
    +--------------+------------------------+---------------------+
    | raw buffer 0 | raw buffer 1 | ...                           |
    +--------------+------------------------------------------------+

The prefix is big-endian (:data:`PREFIX` then :data:`V2_HEADER`), ``magic``
is :data:`MAGIC` (``b"RPNT"``), and the *version field is validated before
anything else is read*, so a v1 peer always gets a clean
:class:`VersionMismatch` instead of a garbled decode (and vice versa — the
v1 header also put ``version`` before the length).

What changed from v1 (one pickled blob after a length header):

* **Zero-copy array framing.**  The metadata section is a pickle
  protocol-5 dump of the payload in which every eligible ndarray (contiguous,
  ``nbytes >= ARRAY_OOB_BYTES``) is replaced by a placeholder; the array's
  raw bytes travel as an entry in the *buffer table* — ``("nd", dtype,
  shape, order, nbytes, clen)`` — followed verbatim in the buffer section.
  Frames are sent with :func:`socket.socket.sendmsg` scatter-gather (no
  concatenation copy) and received with ``recv_into`` straight into the
  destination allocation.
* **Content-addressed blobs.**  With a :class:`~repro.net.blob.BlobCache`
  attached, arrays at or above the connection's blob threshold are replaced
  by ``("blob", digest, dtype, shape, order, nbytes)`` entries that carry
  *no* bytes; the receiver materializes them from its cache and answers a
  ``__need_blob__`` frame only on a miss.  Weights cross the wire once per
  worker, not once per batch.
* **Optional compression.**  ``compress=True`` deflates individual buffers
  (``clen > 0`` in the table entry) when it actually shrinks them — useful
  for sparse spike tensors; decoding always understands both forms, so
  compression is a sender-side choice needing no negotiation.

Pickle is acceptable here because both ends of every connection are trusted
repro processes on the same deployment (the coordinator spawns or invites
its own workers); the version field is the compatibility gate, not a
security boundary.

Error taxonomy (all subclasses of :class:`FrameError`):

* :class:`ConnectionClosed` — clean EOF *between* frames (the peer closed
  its socket after a complete message).  Expected during shutdown.
* :class:`TruncatedFrame` — EOF *inside* a frame (mid-header, mid-metadata
  or mid-buffer).  The peer died or the stream was cut; whatever batch was
  in flight needs rescue.
* :class:`VersionMismatch` — the peer speaks a different
  :data:`WIRE_VERSION`; frames are not decoded across versions.

:class:`FramedConnection` wraps one socket with thread-safe
:meth:`~FramedConnection.send` / :meth:`~FramedConnection.recv`, runs the
blob-miss protocol transparently under its receive lock, and keeps byte
accounting both in total (``bytes_sent`` / ``bytes_received``) and per
message kind (:meth:`~FramedConnection.bytes_by_kind`) for the
``net.bytes.<kind>`` telemetry probe.
"""

from __future__ import annotations

import io
import pickle
import socket
import struct
import threading
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .blob import BlobCache, array_digest, array_wire_view, materialize

__all__ = [
    "ARRAY_OOB_BYTES",
    "BLOB_KIND",
    "BLOB_THRESHOLD_BYTES",
    "ConnectionClosed",
    "FrameError",
    "FramedConnection",
    "HEADER",
    "MAGIC",
    "MAX_BUFFER_BYTES",
    "MAX_FRAME_BYTES",
    "Message",
    "NEED_BLOB_KIND",
    "PREFIX",
    "TruncatedFrame",
    "V2_HEADER",
    "VersionMismatch",
    "WIRE_VERSION",
    "decode_frame",
    "decode_frame_v1",
    "encode_frame",
    "encode_frame_segments",
    "encode_frame_v1",
    "recv_message",
    "request_from_wire",
    "request_to_wire",
    "send_message",
]

MAGIC = b"RPNT"
WIRE_VERSION = 2
#: Version-gate prefix shared by every protocol version: reading it alone is
#: enough to reject a foreign peer cleanly.
PREFIX = struct.Struct("!4sH")  # magic, wire version
#: Rest of the v2 header: flags, kind length, buffer-table entry count,
#: pickled-table length, metadata length.
V2_HEADER = struct.Struct("!HHHIQ")
#: The legacy v1 header (magic, version, payload length) — kept for the v1
#: codec used by handshake tests and the wire microbenchmark.
HEADER = struct.Struct("!4sHI")
# The metadata + table of a frame bigger than this is a corrupted header,
# not a real payload; legitimate metadata (requests minus their arrays) is
# a few KB.  Raw buffers have their own, larger bound below.
MAX_FRAME_BYTES = 1 << 30
#: Bound on the summed out-of-band buffer section of one frame.
MAX_BUFFER_BYTES = 1 << 34
#: Arrays smaller than this pickle in-band with the metadata — framing
#: overhead would exceed the copy they avoid.
ARRAY_OOB_BYTES = 2048
#: Default size at which an array is shipped as a content digest instead of
#: bytes (when the connection has a blob cache).
BLOB_THRESHOLD_BYTES = 1 << 16
#: Buffers below this are never worth deflating even with ``compress=True``.
COMPRESS_MIN_BYTES = 1 << 14

#: Reserved message kinds the connection itself exchanges to resolve blob
#: misses; they never reach application code and never blob-substitute
#: their own payloads.
NEED_BLOB_KIND = "__need_blob__"
BLOB_KIND = "__blob__"
_WIRE_KINDS = frozenset((NEED_BLOB_KIND, BLOB_KIND))

_HAS_SENDMSG = hasattr(socket.socket, "sendmsg")
_IOV_MAX = 64


class FrameError(RuntimeError):
    """Base class for wire-format failures on a repro.net connection."""


class ConnectionClosed(FrameError):
    """The peer closed the stream cleanly between frames (EOF at a frame
    boundary).  Normal during shutdown; never raised mid-frame."""


class TruncatedFrame(FrameError):
    """The stream ended inside a frame — the peer died mid-message."""


class VersionMismatch(FrameError):
    """The peer's :data:`WIRE_VERSION` differs from ours; payloads are not
    decoded across versions."""


@dataclass(frozen=True)
class Message:
    """One decoded wire message: a ``kind`` tag plus its payload dict."""

    kind: str
    payload: Dict[str, object] = field(default_factory=dict)

    def __getitem__(self, key: str) -> object:
        return self.payload[key]

    def get(self, key: str, default: object = None) -> object:
        return self.payload.get(key, default)


def _check_prefix(magic: bytes, version: int) -> None:
    if magic != MAGIC:
        raise FrameError(f"bad frame magic {magic!r} (expected {MAGIC!r})")
    if version != WIRE_VERSION:
        raise VersionMismatch(
            f"peer speaks wire version {version}, this process speaks "
            f"{WIRE_VERSION}"
        )


# -- placeholder plumbing ----------------------------------------------------
# The metadata pickle replaces out-of-band arrays with calls to these
# module-level functions; at decode time a thread-local context supplies the
# materialized arrays.  Both ends import this module, so the references
# pickle by name.

_DECODE_CONTEXT = threading.local()


def _array_ref(index: int) -> np.ndarray:
    arrays = getattr(_DECODE_CONTEXT, "arrays", None)
    if arrays is None:
        raise FrameError("out-of-band array reference outside a frame decode")
    return arrays[index]


def _blob_ref(index: int) -> np.ndarray:
    blobs = getattr(_DECODE_CONTEXT, "blobs", None)
    if blobs is None:
        raise FrameError("blob reference outside a frame decode")
    return blobs[index]


def _small_nd(data: bytes, dtype: str, shape: tuple) -> np.ndarray:
    """Rebuild one sub-OOB array pickled by the in-band fast path.

    Read-only by construction (``frombuffer`` over ``bytes``) — the same
    ownership contract as out-of-band arrays, which decode as read-only
    views into the frame.
    """
    return np.frombuffer(data, dtype=dtype).reshape(shape)


class _EncodeState:
    __slots__ = ("arrays", "blobs", "pickle_buffers", "blob_cache",
                 "blob_threshold")

    def __init__(self, blob_cache: Optional[BlobCache], blob_threshold: int):
        self.arrays: List[np.ndarray] = []
        self.blobs: List[Tuple[str, np.ndarray]] = []
        self.pickle_buffers: List[pickle.PickleBuffer] = []
        self.blob_cache = blob_cache
        self.blob_threshold = blob_threshold


class _WirePickler(pickle.Pickler):
    """Protocol-5 pickler that routes large contiguous arrays out-of-band."""

    def __init__(self, buffer: io.BytesIO, state: _EncodeState):
        super().__init__(buffer, protocol=5, buffer_callback=self._on_buffer)
        self._state = state

    def _on_buffer(self, buffer: pickle.PickleBuffer) -> bool:
        # Truthy return -> serialize in-band; falsy -> ship out-of-band.
        if buffer.raw().nbytes < ARRAY_OOB_BYTES:
            return True
        self._state.pickle_buffers.append(buffer)
        return False

    def reducer_override(self, obj: object):
        state = self._state
        if type(obj) is not np.ndarray:
            return NotImplemented
        if (
            obj.nbytes < ARRAY_OOB_BYTES
            and not obj.dtype.hasobject
            and obj.flags.c_contiguous
        ):
            # Sub-OOB arrays travel in-band either way; this reduce just
            # sidesteps numpy's protocol-5 machinery (a PickleBuffer plus
            # a buffer-callback round trip *per array*), which dominates
            # encode time for result payloads made of thousands of tiny
            # per-layer metric arrays.
            return (_small_nd, (obj.tobytes(), obj.dtype.str, obj.shape))
        if (
            obj.nbytes >= ARRAY_OOB_BYTES
            and not obj.dtype.hasobject
            and (obj.flags.c_contiguous or obj.flags.f_contiguous)
        ):
            if (
                state.blob_cache is not None
                and obj.nbytes >= state.blob_threshold
            ):
                digest = array_digest(obj)
                state.blob_cache.register(digest, array_wire_view(obj)[0])
                index = len(state.blobs)
                state.blobs.append((digest, obj))
                return (_blob_ref, (index,))
            index = len(state.arrays)
            state.arrays.append(obj)
            return (_array_ref, (index,))
        return NotImplemented


def _maybe_compress(view: memoryview, compress: bool,
                    compress_min: int) -> Tuple[object, int]:
    """``(wire_bytes, clen)`` for one buffer; ``clen == 0`` means raw."""
    if not compress or view.nbytes < compress_min:
        return view, 0
    packed = zlib.compress(view, 1)
    if len(packed) >= view.nbytes:
        return view, 0
    return packed, len(packed)


def encode_frame_segments(
    message: Message,
    version: int = WIRE_VERSION,
    *,
    blob_cache: Optional[BlobCache] = None,
    blob_threshold: int = BLOB_THRESHOLD_BYTES,
    compress: bool = False,
    compress_min: int = COMPRESS_MIN_BYTES,
) -> Tuple[List[object], int]:
    """``message`` as scatter-gather segments plus the total byte count.

    The first segment is the header + kind + buffer table; the second is the
    protocol-5 metadata; the rest are raw (or individually deflated) array
    buffers, zero-copy views over the live payload arrays.
    """
    state = _EncodeState(blob_cache, blob_threshold)
    sink = io.BytesIO()
    _WirePickler(sink, state).dump(message.payload)
    meta = sink.getbuffer()

    table: List[tuple] = []
    buffers: List[memoryview] = []
    buffer_bytes = 0
    for arr in state.arrays:
        view, order = array_wire_view(arr)
        wire, clen = _maybe_compress(view, compress, compress_min)
        table.append(("nd", arr.dtype.str, tuple(arr.shape), order,
                      arr.nbytes, clen))
        wire_view = wire if isinstance(wire, memoryview) else memoryview(wire)
        buffers.append(wire_view)
        buffer_bytes += wire_view.nbytes
    for digest, arr in state.blobs:
        _view, order = array_wire_view(arr)
        table.append(("blob", digest, arr.dtype.str, tuple(arr.shape), order,
                      arr.nbytes))
    for pb in state.pickle_buffers:
        view = pb.raw().cast("B")
        wire, clen = _maybe_compress(view, compress, compress_min)
        table.append(("pb", view.nbytes, clen))
        wire_view = wire if isinstance(wire, memoryview) else memoryview(wire)
        buffers.append(wire_view)
        buffer_bytes += wire_view.nbytes

    kind_bytes = message.kind.encode("utf-8")
    table_bytes = pickle.dumps(table, protocol=4) if table else b""
    if len(kind_bytes) > 0xFFFF or len(table) > 0xFFFF:
        raise FrameError(
            f"frame kind/table out of header range "
            f"({len(kind_bytes)} kind bytes, {len(table)} entries)"
        )
    framed = len(kind_bytes) + len(table_bytes) + meta.nbytes
    if framed > MAX_FRAME_BYTES:
        raise FrameError(
            f"metadata of {framed} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame bound"
        )
    if buffer_bytes > MAX_BUFFER_BYTES:
        raise FrameError(
            f"buffer section of {buffer_bytes} bytes exceeds the "
            f"{MAX_BUFFER_BYTES}-byte bound"
        )
    header = PREFIX.pack(MAGIC, version) + V2_HEADER.pack(
        0, len(kind_bytes), len(table), len(table_bytes), meta.nbytes
    )
    segments: List[object] = [header + kind_bytes + table_bytes, meta]
    segments.extend(buffers)
    total = len(segments[0]) + meta.nbytes + buffer_bytes
    return segments, total


def encode_frame(message: Message, version: int = WIRE_VERSION,
                 **options: object) -> bytes:
    """``message`` as one contiguous frame (convenience over segments)."""
    segments, _total = encode_frame_segments(message, version, **options)
    return b"".join(bytes(memoryview(seg).cast("B")) if not isinstance(seg, bytes)
                    else seg for seg in segments)


def _parse_table(raw: object, n_entries: int) -> List[tuple]:
    table = pickle.loads(raw) if n_entries else []
    if not isinstance(table, list) or len(table) != n_entries:
        raise FrameError(
            f"buffer table holds {len(table) if isinstance(table, list) else '?'} "
            f"entries but the header announces {n_entries}"
        )
    return table


def _buffer_wire_size(entry: tuple) -> int:
    """Bytes the entry occupies in the buffer section (0 for blob refs)."""
    if entry[0] == "nd":
        return entry[5] or entry[4]
    if entry[0] == "pb":
        return entry[2] or entry[1]
    if entry[0] == "blob":
        return 0
    raise FrameError(f"unknown buffer-table entry tag {entry[0]!r}")


def _finish_payload(meta, pb_buffers: Sequence[object],
                    arrays: List[np.ndarray],
                    blob_arrays: List[np.ndarray]) -> object:
    _DECODE_CONTEXT.arrays = arrays
    _DECODE_CONTEXT.blobs = blob_arrays
    try:
        return pickle.loads(meta, buffers=pb_buffers)
    finally:
        _DECODE_CONTEXT.arrays = None
        _DECODE_CONTEXT.blobs = None


def _materialize_entry(entry: tuple, raw, *, writable: bool) -> np.ndarray:
    """Array for one ``nd`` table entry from its wire bytes."""
    _tag, dtype, shape, order, _nbytes, clen = entry
    if clen:
        raw = bytearray(zlib.decompress(raw)) if writable else zlib.decompress(raw)
    return materialize(raw, dtype, tuple(shape), order)


def decode_frame(data: bytes,
                 blob_cache: Optional[BlobCache] = None) -> Tuple[Message, int]:
    """Decode one frame from ``data``; returns ``(message, bytes_consumed)``.

    Raises :class:`TruncatedFrame` when ``data`` holds less than one whole
    frame, :class:`FrameError` on a bad magic or a blob reference absent
    from ``blob_cache``, :class:`VersionMismatch` on a foreign wire version.
    Decoded out-of-band arrays are zero-copy (read-only) views into
    ``data``.
    """
    view = memoryview(data)
    if view.nbytes < PREFIX.size:
        raise TruncatedFrame(
            f"{view.nbytes} bytes is shorter than the {PREFIX.size}-byte prefix"
        )
    magic, version = PREFIX.unpack_from(view)
    _check_prefix(magic, version)
    if view.nbytes < PREFIX.size + V2_HEADER.size:
        raise TruncatedFrame(
            f"{view.nbytes} bytes is shorter than the "
            f"{PREFIX.size + V2_HEADER.size}-byte v2 header"
        )
    _flags, kind_len, n_entries, table_len, meta_len = V2_HEADER.unpack_from(
        view, PREFIX.size
    )
    if kind_len + table_len + meta_len > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame announces {kind_len + table_len + meta_len} metadata "
            f"bytes, over the {MAX_FRAME_BYTES}-byte bound"
        )
    offset = PREFIX.size + V2_HEADER.size
    if view.nbytes < offset + kind_len + table_len + meta_len:
        raise TruncatedFrame(
            f"frame announces {kind_len + table_len + meta_len} metadata "
            f"bytes but only {view.nbytes - offset} are present"
        )
    kind = bytes(view[offset:offset + kind_len]).decode("utf-8")
    offset += kind_len
    table = _parse_table(view[offset:offset + table_len], n_entries)
    offset += table_len
    meta = view[offset:offset + meta_len]
    offset += meta_len

    buffer_bytes = sum(_buffer_wire_size(entry) for entry in table)
    if buffer_bytes > MAX_BUFFER_BYTES:
        raise FrameError(
            f"buffer section of {buffer_bytes} bytes exceeds the "
            f"{MAX_BUFFER_BYTES}-byte bound"
        )
    if view.nbytes < offset + buffer_bytes:
        raise TruncatedFrame(
            f"frame announces {buffer_bytes} buffer bytes but only "
            f"{view.nbytes - offset} are present"
        )

    arrays: List[np.ndarray] = []
    pb_buffers: List[object] = []
    blob_arrays: List[np.ndarray] = []
    for entry in table:
        size = _buffer_wire_size(entry)
        raw = view[offset:offset + size]
        offset += size
        if entry[0] == "nd":
            arrays.append(_materialize_entry(entry, raw, writable=False))
        elif entry[0] == "pb":
            pb_buffers.append(zlib.decompress(raw) if entry[2] else raw)
        else:  # blob
            _tag, digest, dtype, shape, order, _nbytes = entry
            stored = blob_cache.get(digest) if blob_cache is not None else None
            if stored is None:
                raise FrameError(
                    f"frame references blob {digest} absent from the local cache"
                )
            blob_arrays.append(materialize(stored, dtype, tuple(shape), order))

    payload = _finish_payload(meta, pb_buffers, arrays, blob_arrays)
    return Message(kind, payload), offset


# -- legacy v1 codec ---------------------------------------------------------
# Kept for the version-negotiation tests and as the comparison arm of
# benchmarks/bench_wire.py.  v1 frames are HEADER + one pickled
# (kind, payload) blob; v1 also put the version before the length, so both
# generations reject each other with a clean VersionMismatch.

def encode_frame_v1(message: Message) -> bytes:
    """``message`` as one legacy v1 frame (header + pickled payload)."""
    payload = pickle.dumps(
        (message.kind, message.payload), protocol=pickle.HIGHEST_PROTOCOL
    )
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(
            f"payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame bound"
        )
    return HEADER.pack(MAGIC, 1, len(payload)) + payload


def decode_frame_v1(data: bytes) -> Tuple[Message, int]:
    """Decode one legacy v1 frame; raises :class:`VersionMismatch` on v2."""
    if len(data) < HEADER.size:
        raise TruncatedFrame(
            f"{len(data)} bytes is shorter than the {HEADER.size}-byte header"
        )
    magic, version, length = HEADER.unpack_from(data)
    if magic != MAGIC:
        raise FrameError(f"bad frame magic {magic!r} (expected {MAGIC!r})")
    if version != 1:
        raise VersionMismatch(
            f"peer speaks wire version {version}, this decoder speaks 1"
        )
    if length > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame announces {length} payload bytes, over the "
            f"{MAX_FRAME_BYTES}-byte bound"
        )
    end = HEADER.size + length
    if len(data) < end:
        raise TruncatedFrame(
            f"frame announces {length} payload bytes but only "
            f"{len(data) - HEADER.size} are present"
        )
    kind, payload = pickle.loads(data[HEADER.size:end])
    return Message(kind, payload), end


# -- socket paths ------------------------------------------------------------

def _sendmsg_all(sock: socket.socket, segments: Sequence[object]) -> None:
    """Write every segment with scatter-gather I/O, handling partial sends."""
    views = []
    for seg in segments:
        view = seg if isinstance(seg, memoryview) else memoryview(seg)
        if view.format != "B" or view.ndim != 1:
            view = view.cast("B")
        if view.nbytes:
            views.append(view)
    if not _HAS_SENDMSG:  # e.g. non-POSIX: fall back to sequential writes
        for view in views:
            sock.sendall(view)
        return
    while views:
        sent = sock.sendmsg(views[:_IOV_MAX])
        while sent:
            head = views[0]
            if sent >= head.nbytes:
                sent -= head.nbytes
                views.pop(0)
            else:
                views[0] = head[sent:]
                sent = 0


def _recv_exact_into(sock: socket.socket, view: memoryview, *,
                     at_boundary: bool = False) -> None:
    """Fill ``view`` from the socket or raise.

    ``at_boundary`` distinguishes a clean shutdown (EOF before any byte of a
    new frame -> :class:`ConnectionClosed`) from a peer dying mid-message
    (:class:`TruncatedFrame`) — including inside the out-of-band buffer
    section, which therefore can never deadlock a reader.
    """
    got = 0
    total = view.nbytes
    while got < total:
        count = sock.recv_into(view[got:])
        if count == 0:
            if at_boundary and got == 0:
                raise ConnectionClosed("peer closed the connection")
            raise TruncatedFrame(
                f"stream ended {total - got} bytes short of a complete frame"
            )
        got += count


class _InboundFrame:
    """One frame pulled off a socket, possibly awaiting blob resolution."""

    __slots__ = ("kind", "bytes_read", "blob_entries", "_meta", "_pb",
                 "_arrays")

    def __init__(self, kind: str, bytes_read: int, meta: bytearray,
                 pb_buffers: List[object], arrays: List[np.ndarray],
                 blob_entries: List[tuple]):
        self.kind = kind
        self.bytes_read = bytes_read
        self.blob_entries = blob_entries
        self._meta = meta
        self._pb = pb_buffers
        self._arrays = arrays

    def missing(self, blob_cache: Optional[BlobCache]) -> List[str]:
        """Digests this frame references that the cache cannot serve."""
        return [
            entry[1] for entry in self.blob_entries
            if blob_cache is None or entry[1] not in blob_cache
        ]

    def finish(self, blob_cache: Optional[BlobCache]) -> Message:
        """Materialize blobs and unpickle the payload into a Message."""
        blob_arrays: List[np.ndarray] = []
        for _tag, digest, dtype, shape, order, _nbytes in self.blob_entries:
            stored = blob_cache.get(digest) if blob_cache is not None else None
            if stored is None:
                raise FrameError(
                    f"frame references blob {digest} absent from the local cache"
                )
            blob_arrays.append(materialize(stored, dtype, tuple(shape), order))
        payload = _finish_payload(self._meta, self._pb, self._arrays,
                                  blob_arrays)
        return Message(self.kind, payload)


def _recv_frame(sock: socket.socket) -> _InboundFrame:
    """Read one v2 frame, landing buffers straight in their allocations."""
    prefix = bytearray(PREFIX.size)
    _recv_exact_into(sock, memoryview(prefix), at_boundary=True)
    magic, version = PREFIX.unpack(prefix)
    _check_prefix(magic, version)
    head = bytearray(V2_HEADER.size)
    _recv_exact_into(sock, memoryview(head))
    _flags, kind_len, n_entries, table_len, meta_len = V2_HEADER.unpack(head)
    if kind_len + table_len + meta_len > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame announces {kind_len + table_len + meta_len} metadata "
            f"bytes, over the {MAX_FRAME_BYTES}-byte bound"
        )
    front = bytearray(kind_len + table_len)
    if front:
        _recv_exact_into(sock, memoryview(front))
    kind = bytes(front[:kind_len]).decode("utf-8")
    table = _parse_table(memoryview(front)[kind_len:], n_entries)
    meta = bytearray(meta_len)
    if meta:
        _recv_exact_into(sock, memoryview(meta))

    buffer_bytes = sum(_buffer_wire_size(entry) for entry in table)
    if buffer_bytes > MAX_BUFFER_BYTES:
        raise FrameError(
            f"buffer section of {buffer_bytes} bytes exceeds the "
            f"{MAX_BUFFER_BYTES}-byte bound"
        )

    arrays: List[np.ndarray] = []
    pb_buffers: List[object] = []
    blob_entries: List[tuple] = []
    for entry in table:
        tag = entry[0]
        if tag == "blob":
            blob_entries.append(entry)
            continue
        size = _buffer_wire_size(entry)
        if tag == "nd" and not entry[5]:
            # Uncompressed array: receive straight into the destination
            # allocation — the zero-copy landing pad.
            _t, dtype, shape, order, _nbytes, _clen = entry
            if order == "F":
                arr = np.empty(tuple(reversed(shape)), dtype=np.dtype(dtype))
            else:
                arr = np.empty(tuple(shape), dtype=np.dtype(dtype))
            _recv_exact_into(sock, memoryview(arr).cast("B"))
            arrays.append(arr.T if order == "F" else arr)
            continue
        raw = bytearray(size)
        if raw:
            _recv_exact_into(sock, memoryview(raw))
        if tag == "nd":
            arrays.append(_materialize_entry(entry, raw, writable=True))
        else:  # pb
            pb_buffers.append(
                bytearray(zlib.decompress(raw)) if entry[2] else raw
            )
    total = (PREFIX.size + V2_HEADER.size + len(front) + meta_len
             + buffer_bytes)
    return _InboundFrame(kind, total, meta, pb_buffers, arrays, blob_entries)


def send_message(sock: socket.socket, message: Message,
                 version: int = WIRE_VERSION) -> int:
    """Write one frame to ``sock``; returns the bytes put on the wire."""
    segments, total = encode_frame_segments(message, version)
    _sendmsg_all(sock, segments)
    return total


def recv_message(sock: socket.socket) -> Tuple[Message, int]:
    """Read one frame from ``sock``; returns ``(message, bytes_read)``.

    This cache-less entry point refuses frames carrying blob references —
    use a :class:`FramedConnection` for those.
    """
    frame = _recv_frame(sock)
    return frame.finish(None), frame.bytes_read


# Fields of an InferenceRequest that travel to a worker.  ``future`` stays
# home (a concurrent.futures.Future is process-local by definition) and
# ``deadline``/``enqueued_at`` are coordinator-clock values that would be
# meaningless under the worker's time.monotonic(); the coordinator owns
# deadline enforcement and latency accounting.  ``trace`` ships: the
# TraceContext carries only clock-free identifiers (trace/span ids and the
# sampling bit), and the worker's span *timestamps* are translated back
# into the coordinator's clock at adoption (Tracer.adopt) rather than ever
# comparing monotonic values across hosts.
_REQUEST_WIRE_FIELDS = (
    "mode", "config", "group_key", "fingerprint", "frames_count",
    "batch_size", "seed", "timesteps", "firing_rates", "network", "frames",
    "policy", "trace", "id",
)


def request_to_wire(request: object) -> Dict[str, object]:
    """An :class:`~repro.serve.queue.InferenceRequest` as a picklable dict.

    Everything the worker needs to reproduce the engine pass crosses the
    wire bit-for-bit (configs, seeds, networks, stacked frames, numerics
    policies all pickle losslessly); the process-local fields do not — see
    :data:`_REQUEST_WIRE_FIELDS`.
    """
    return {name: getattr(request, name) for name in _REQUEST_WIRE_FIELDS}


def request_from_wire(data: Dict[str, object]) -> object:
    """Rebuild an ``InferenceRequest`` from its wire dict.

    The rebuilt request carries a *fresh local* future (resolved by the
    worker's own batch execution, never shipped back — only the result is)
    and keeps the coordinator-assigned ``id`` so results correlate.
    """
    from ..serve.queue import InferenceRequest

    return InferenceRequest(**data)


class FramedConnection:
    """Thread-safe framed-message endpoint over one connected socket.

    Multiple threads may send concurrently (a worker's heartbeat thread
    interleaves with its result stream; the coordinator's store-replication
    broadcast interleaves with batch dispatch) — each frame is written
    atomically under the send lock.  Receiving is single-reader by
    convention (one handler/loop thread per connection) but locked anyway.

    With a :class:`~repro.net.blob.BlobCache` attached, the connection runs
    the blob protocol transparently: outgoing arrays at or above
    ``blob_threshold`` travel as digests; an incoming frame whose digests
    miss the local cache parks under the receive lock, a ``__need_blob__``
    frame asks the peer for the bytes, and ``__blob__`` replies (plus any
    interleaved application frames, which are re-queued in arrival order)
    are absorbed until the parked frame resolves.  A peer that cannot serve
    a requested digest produces a :class:`FrameError` — a link error, not a
    hang — and a dead peer surfaces as :class:`TruncatedFrame` from inside
    the wait, so the protocol never deadlocks a reader.

    Byte accounting accumulates in total (``bytes_sent`` /
    ``bytes_received``) and per message kind (:meth:`bytes_by_kind`) for the
    ``net.bytes.<kind>`` telemetry probe; blob-protocol savings are tracked
    in :attr:`blob_stats`.
    """

    def __init__(self, sock: socket.socket, *,
                 blob_cache: Optional[BlobCache] = None,
                 blob_threshold: Optional[int] = None,
                 compress: bool = False):
        self._sock = sock
        self._blob_cache = blob_cache
        self._blob_threshold = (
            BLOB_THRESHOLD_BYTES if blob_threshold is None else blob_threshold
        )
        self._compress = compress
        self._send_lock = threading.Lock()
        self._recv_lock = threading.Lock()
        self._counter_lock = threading.Lock()
        self._bytes_sent = 0
        self._bytes_received = 0
        self._sent_by_kind: Dict[str, int] = {}
        self._received_by_kind: Dict[str, int] = {}
        self._blob_hits = 0
        self._blob_misses = 0
        self._blob_bytes_saved = 0
        self._blob_failed: set = set()
        self._pending: List[_InboundFrame] = []
        self._sends_active = 0
        self._closed = False

    @classmethod
    def connect(cls, address: Tuple[str, int],
                timeout: Optional[float] = None,
                **options: object) -> "FramedConnection":
        """Open a framed connection to ``(host, port)``.

        ``timeout`` bounds the connect; the established stream itself is
        blocking (message waits are governed by the protocol, not the
        socket).  ``options`` forward to the constructor (blob cache,
        threshold, compression).
        """
        sock = socket.create_connection(address, timeout=timeout)
        connection = None
        try:
            sock.settimeout(None)
            connection = cls(sock, **options)
            return connection
        finally:
            if connection is None:
                sock.close()

    # -- messaging ----------------------------------------------------------
    def send(self, kind: str, **payload: object) -> int:
        """Frame and send one message; returns bytes written."""
        # Wire-internal frames must not blob-substitute their own payloads
        # (a __blob__ frame replaced by its digest could never resolve).
        cache = None if kind in _WIRE_KINDS else self._blob_cache
        with self._counter_lock:
            self._sends_active += 1
        try:
            segments, total = encode_frame_segments(
                Message(kind, payload),
                blob_cache=cache,
                blob_threshold=self._blob_threshold,
                compress=self._compress,
            )
            with self._send_lock:
                _sendmsg_all(self._sock, segments)
        finally:
            with self._counter_lock:
                self._sends_active -= 1
        with self._counter_lock:
            self._bytes_sent += total
            self._sent_by_kind[kind] = self._sent_by_kind.get(kind, 0) + total
        return total

    @property
    def sending(self) -> bool:
        """True while any thread is inside :meth:`send`.

        Covers the whole send — encoding (compression included) plus the
        socket write — so a liveness monitor can tell "the link thread is
        busy moving a multi-megabyte frame" apart from "the peer went
        quiet".  A reader blocked on an empty socket is *not* sending.
        """
        with self._counter_lock:
            return self._sends_active > 0

    def recv(self) -> Message:
        """Block for the next application message.

        Wire-internal blob traffic (``__need_blob__`` / ``__blob__``) is
        handled inline and never surfaces here.  Raises the
        :class:`FrameError` family.
        """
        with self._recv_lock:
            while True:
                if self._pending:
                    frame = self._pending.pop(0)
                else:
                    frame = self._read_frame()
                message = self._settle(frame)
                if message is not None:
                    return message

    def _read_frame(self) -> _InboundFrame:
        frame = _recv_frame(self._sock)
        with self._counter_lock:
            self._bytes_received += frame.bytes_read
            self._received_by_kind[frame.kind] = (
                self._received_by_kind.get(frame.kind, 0) + frame.bytes_read
            )
        return frame

    def _settle(self, frame: _InboundFrame) -> Optional[Message]:
        """Resolve one inbound frame; ``None`` for absorbed wire traffic."""
        if frame.kind == NEED_BLOB_KIND:
            self._answer_need_blob(frame)
            return None
        if frame.kind == BLOB_KIND:
            self._absorb_blob(frame)
            return None
        missing = frame.missing(self._blob_cache)
        if frame.blob_entries:
            with self._counter_lock:
                self._blob_misses += len(missing)
                self._blob_hits += len(frame.blob_entries) - len(missing)
                self._blob_bytes_saved += sum(
                    entry[5] for entry in frame.blob_entries
                    if entry[1] not in missing
                )
        if missing:
            if self._blob_cache is None:
                raise FrameError(
                    f"frame references blobs {missing} but this connection "
                    f"has no blob cache"
                )
            self.send(NEED_BLOB_KIND, digests=list(missing))
            self._await_blobs(frame, set(missing))
        return frame.finish(self._blob_cache)

    def _await_blobs(self, parked: _InboundFrame, missing: set) -> None:
        """Absorb frames until every digest in ``missing`` is resolvable."""
        while missing:
            frame = self._read_frame()
            if frame.kind == BLOB_KIND:
                self._absorb_blob(frame)
            elif frame.kind == NEED_BLOB_KIND:
                self._answer_need_blob(frame)
            else:
                # An application frame the peer sent before our request
                # reached it: deliver it after the parked frame, preserving
                # the peer's send order for frames queued behind it.
                self._pending.append(frame)
                continue
            failed = missing & self._blob_failed
            if failed:
                raise FrameError(
                    f"peer cannot serve blobs {sorted(failed)} referenced by "
                    f"a {parked.kind!r} frame"
                )
            missing = {d for d in missing if d not in self._blob_cache}

    def _answer_need_blob(self, frame: _InboundFrame) -> None:
        message = frame.finish(None)
        for digest in message["digests"]:
            stored = (self._blob_cache.get(digest)
                      if self._blob_cache is not None else None)
            if stored is None:
                self.send(BLOB_KIND, digest=digest, found=False)
            else:
                self.send(BLOB_KIND, digest=digest, found=True,
                          data=np.frombuffer(stored, dtype=np.uint8))

    def _absorb_blob(self, frame: _InboundFrame) -> None:
        message = frame.finish(None)
        digest = message["digest"]
        if not message.get("found", True):
            self._blob_failed.add(digest)
            return
        if self._blob_cache is not None:
            self._blob_cache.register(digest, message["data"])

    # -- accounting ---------------------------------------------------------
    @property
    def bytes_sent(self) -> int:
        with self._counter_lock:
            return self._bytes_sent

    @property
    def bytes_received(self) -> int:
        with self._counter_lock:
            return self._bytes_received

    def bytes_by_kind(self) -> Dict[str, Dict[str, int]]:
        """Per-message-kind byte totals: ``{"sent": {...}, "received": {...}}``."""
        with self._counter_lock:
            return {
                "sent": dict(self._sent_by_kind),
                "received": dict(self._received_by_kind),
            }

    @property
    def blob_stats(self) -> Dict[str, int]:
        """Blob-protocol outcome counters for inbound frames."""
        with self._counter_lock:
            return {
                "blob_hits": self._blob_hits,
                "blob_misses": self._blob_misses,
                "blob_bytes_saved": self._blob_bytes_saved,
            }

    @property
    def closed(self) -> bool:
        return self._closed

    # -- lifecycle ----------------------------------------------------------
    def close(self) -> None:
        """Shut the stream down and close the socket (idempotent)."""
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass  # already disconnected
        self._sock.close()

    def __enter__(self) -> "FramedConnection":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
