"""Length-prefixed framed messages over sockets — the repro.net wire format.

Every message on a :mod:`repro.net` connection is one *frame*:

.. code-block:: text

    +-------+---------+----------------+-----------------+
    | magic | version | payload length | pickled payload |
    | 4 B   | u16     | u32            | N bytes         |
    +-------+---------+----------------+-----------------+

The header is big-endian (:data:`HEADER`), ``magic`` is :data:`MAGIC`
(``b"RPNT"``), and the payload is a pickled :class:`Message` — a ``kind``
string plus a payload dict.  Pickle is acceptable here because both ends of
every connection are trusted repro processes on the same deployment (the
coordinator spawns or invites its own workers); the version field is the
compatibility gate, not a security boundary.

Error taxonomy (all subclasses of :class:`FrameError`):

* :class:`ConnectionClosed` — clean EOF *between* frames (the peer closed
  its socket after a complete message).  Expected during shutdown.
* :class:`TruncatedFrame` — EOF *inside* a frame (mid-header or
  mid-payload).  The peer died or the stream was cut; whatever batch was
  in flight needs rescue.
* :class:`VersionMismatch` — the peer speaks a different
  :data:`WIRE_VERSION`; frames are not decoded across versions.

:class:`FramedConnection` wraps one socket with thread-safe
:meth:`~FramedConnection.send` / :meth:`~FramedConnection.recv` plus byte
accounting (``bytes_sent`` / ``bytes_received``) that the coordinator
surfaces as ``net.bytes_*`` telemetry.
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = [
    "ConnectionClosed",
    "FrameError",
    "FramedConnection",
    "HEADER",
    "MAGIC",
    "MAX_FRAME_BYTES",
    "Message",
    "TruncatedFrame",
    "VersionMismatch",
    "WIRE_VERSION",
    "decode_frame",
    "encode_frame",
    "recv_message",
    "request_from_wire",
    "request_to_wire",
    "send_message",
]

MAGIC = b"RPNT"
WIRE_VERSION = 1
HEADER = struct.Struct("!4sHI")  # magic, wire version, payload length
# A frame bigger than this is a corrupted header, not a real payload; the
# largest legitimate frames (functional batches carrying a network plus
# stacked frames) are a few MB.
MAX_FRAME_BYTES = 1 << 30


class FrameError(RuntimeError):
    """Base class for wire-format failures on a repro.net connection."""


class ConnectionClosed(FrameError):
    """The peer closed the stream cleanly between frames (EOF at a frame
    boundary).  Normal during shutdown; never raised mid-frame."""


class TruncatedFrame(FrameError):
    """The stream ended inside a frame — the peer died mid-message."""


class VersionMismatch(FrameError):
    """The peer's :data:`WIRE_VERSION` differs from ours; payloads are not
    decoded across versions."""


@dataclass(frozen=True)
class Message:
    """One decoded wire message: a ``kind`` tag plus its payload dict."""

    kind: str
    payload: Dict[str, object] = field(default_factory=dict)

    def __getitem__(self, key: str) -> object:
        return self.payload[key]

    def get(self, key: str, default: object = None) -> object:
        return self.payload.get(key, default)


def encode_frame(message: Message, version: int = WIRE_VERSION) -> bytes:
    """``message`` as one complete frame (header + pickled payload)."""
    payload = pickle.dumps(
        (message.kind, message.payload), protocol=pickle.HIGHEST_PROTOCOL
    )
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(
            f"payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame bound"
        )
    return HEADER.pack(MAGIC, version, len(payload)) + payload


def decode_frame(data: bytes) -> Tuple[Message, int]:
    """Decode one frame from ``data``; returns ``(message, bytes_consumed)``.

    Raises :class:`TruncatedFrame` when ``data`` holds less than one whole
    frame, :class:`FrameError` on a bad magic, :class:`VersionMismatch` on a
    foreign wire version.
    """
    if len(data) < HEADER.size:
        raise TruncatedFrame(
            f"{len(data)} bytes is shorter than the {HEADER.size}-byte header"
        )
    magic, version, length = HEADER.unpack_from(data)
    _check_header(magic, version, length)
    end = HEADER.size + length
    if len(data) < end:
        raise TruncatedFrame(
            f"frame announces {length} payload bytes but only "
            f"{len(data) - HEADER.size} are present"
        )
    kind, payload = pickle.loads(data[HEADER.size:end])
    return Message(kind, payload), end


def _check_header(magic: bytes, version: int, length: int) -> None:
    if magic != MAGIC:
        raise FrameError(f"bad frame magic {magic!r} (expected {MAGIC!r})")
    if version != WIRE_VERSION:
        raise VersionMismatch(
            f"peer speaks wire version {version}, this process speaks "
            f"{WIRE_VERSION}"
        )
    if length > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame announces {length} payload bytes, over the "
            f"{MAX_FRAME_BYTES}-byte bound"
        )


def send_message(sock: socket.socket, message: Message,
                 version: int = WIRE_VERSION) -> int:
    """Write one frame to ``sock``; returns the bytes put on the wire."""
    frame = encode_frame(message, version=version)
    sock.sendall(frame)
    return len(frame)


def _recv_exact(sock: socket.socket, count: int, *, at_boundary: bool) -> bytes:
    """Read exactly ``count`` bytes or raise.

    ``at_boundary`` distinguishes a clean shutdown (EOF before any byte of a
    new frame -> :class:`ConnectionClosed`) from a peer dying mid-message
    (:class:`TruncatedFrame`).
    """
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if at_boundary and remaining == count:
                raise ConnectionClosed("peer closed the connection")
            raise TruncatedFrame(
                f"stream ended {remaining} bytes short of a complete frame"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> Tuple[Message, int]:
    """Read one frame from ``sock``; returns ``(message, bytes_read)``."""
    header = _recv_exact(sock, HEADER.size, at_boundary=True)
    magic, version, length = HEADER.unpack_from(header)
    _check_header(magic, version, length)
    payload = _recv_exact(sock, length, at_boundary=False)
    kind, body = pickle.loads(payload)
    return Message(kind, body), HEADER.size + length


# Fields of an InferenceRequest that travel to a worker.  ``future`` stays
# home (a concurrent.futures.Future is process-local by definition) and
# ``deadline``/``enqueued_at`` are coordinator-clock values that would be
# meaningless under the worker's time.monotonic(); the coordinator owns
# deadline enforcement and latency accounting.
_REQUEST_WIRE_FIELDS = (
    "mode", "config", "group_key", "fingerprint", "frames_count",
    "batch_size", "seed", "timesteps", "firing_rates", "network", "frames",
    "policy", "id",
)


def request_to_wire(request: object) -> Dict[str, object]:
    """An :class:`~repro.serve.queue.InferenceRequest` as a picklable dict.

    Everything the worker needs to reproduce the engine pass crosses the
    wire bit-for-bit (configs, seeds, networks, stacked frames, numerics
    policies all pickle losslessly); the process-local fields do not — see
    :data:`_REQUEST_WIRE_FIELDS`.
    """
    return {name: getattr(request, name) for name in _REQUEST_WIRE_FIELDS}


def request_from_wire(data: Dict[str, object]) -> object:
    """Rebuild an ``InferenceRequest`` from its wire dict.

    The rebuilt request carries a *fresh local* future (resolved by the
    worker's own batch execution, never shipped back — only the result is)
    and keeps the coordinator-assigned ``id`` so results correlate.
    """
    from ..serve.queue import InferenceRequest

    return InferenceRequest(**data)


class FramedConnection:
    """Thread-safe framed-message endpoint over one connected socket.

    Multiple threads may send concurrently (a worker's heartbeat thread
    interleaves with its result stream; the coordinator's store-replication
    broadcast interleaves with batch dispatch) — each frame is written
    atomically under the send lock.  Receiving is single-reader by
    convention (one handler/loop thread per connection) but locked anyway.
    ``bytes_sent`` / ``bytes_received`` accumulate for telemetry.
    """

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._send_lock = threading.Lock()
        self._recv_lock = threading.Lock()
        self._counter_lock = threading.Lock()
        self._bytes_sent = 0
        self._bytes_received = 0
        self._closed = False

    @classmethod
    def connect(cls, address: Tuple[str, int],
                timeout: Optional[float] = None) -> "FramedConnection":
        """Open a framed connection to ``(host, port)``.

        ``timeout`` bounds the connect; the established stream itself is
        blocking (message waits are governed by the protocol, not the
        socket).
        """
        sock = socket.create_connection(address, timeout=timeout)
        connection = None
        try:
            sock.settimeout(None)
            connection = cls(sock)
            return connection
        finally:
            if connection is None:
                sock.close()

    # -- messaging ----------------------------------------------------------
    def send(self, kind: str, **payload: object) -> int:
        """Frame and send one message; returns bytes written."""
        with self._send_lock:
            written = send_message(self._sock, Message(kind, payload))
        with self._counter_lock:
            self._bytes_sent += written
        return written

    def recv(self) -> Message:
        """Block for the next message (raises the :class:`FrameError` family)."""
        with self._recv_lock:
            message, read = recv_message(self._sock)
        with self._counter_lock:
            self._bytes_received += read
        return message

    # -- accounting ---------------------------------------------------------
    @property
    def bytes_sent(self) -> int:
        with self._counter_lock:
            return self._bytes_sent

    @property
    def bytes_received(self) -> int:
        with self._counter_lock:
            return self._bytes_received

    @property
    def closed(self) -> bool:
        return self._closed

    # -- lifecycle ----------------------------------------------------------
    def close(self) -> None:
        """Shut the stream down and close the socket (idempotent)."""
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass  # already disconnected
        self._sock.close()

    def __enter__(self) -> "FramedConnection":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
