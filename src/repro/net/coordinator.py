"""The coordinator: admission front of a multi-host serving cluster.

:class:`Coordinator` subclasses :class:`repro.serve.server.InferenceServer`
with ``workers=0``: the whole single-host admission surface — bounded
:class:`~repro.serve.queue.RequestQueue` backpressure, deadlines, the
result-store short-circuit, ``submit_statistical`` / ``submit_functional``,
telemetry — is inherited unchanged, and instead of local worker threads the
queue is drained by *remote worker processes* speaking the
:mod:`repro.net.framing` wire protocol.

Dispatch is pull-based.  A worker registers, then loops ``pull`` ->
(``batch`` | ``idle`` | ``shutdown``).  On a ``pull`` the coordinator pops
the queue head, lets the inherited :class:`~repro.serve.batcher.MicroBatcher`
collect a fingerprint-compatible micro-batch behind it, re-checks the
result store per request (a result replicated from another worker since
admission resolves right here — the cluster-wide short-circuit), records
the remainder as an in-flight :class:`DispatchedBatch` and ships it.
Results stream back asynchronously; the coordinator stores each one in its
:class:`~repro.net.store.ReplicatedResultStore` (which broadcasts
``store_put`` to every worker) and resolves the caller's future.

Failure semantics — the generalization of
:class:`~repro.backends.ShardedBackend`'s rescue worker:

* **dead worker** — heartbeats stop for longer than ``liveness_timeout_s``
  (or the connection drops): every in-flight request of that worker whose
  future is still pending is re-queued *at the head* of the request queue
  (:meth:`~repro.serve.queue.RequestQueue.requeue`), so the next pulling
  worker executes it before fresh traffic.  No future is ever lost.
* **stalled worker** — still heartbeating but sitting on a batch: rescued
  when the batch has been in flight longer than ``stall_timeout_s`` (when
  set), or — deadline-aware — when a request's deadline is closer than
  ``deadline_margin_s``.  The slow worker's late results are *not*
  discarded: they land in the replicated store, where the re-queued
  requests' dispatch-time store check resolves them without a second
  engine pass; double resolution is absorbed by
  :func:`~repro.serve.queue.resolve_future` (first outcome wins).

Per-worker telemetry (dispatches, rescues, heartbeat lag, bytes on wire)
merges into the inherited :class:`~repro.serve.metrics.MetricsRegistry`
under ``net.*`` names, so one :meth:`stats` snapshot covers admission,
batching and the cluster.
"""

from __future__ import annotations

import itertools
import os
import socket
import threading
import time
from typing import Dict, List, Optional, Tuple

from ..serve.metrics import MetricsRegistry
from ..serve.queue import InferenceRequest, resolve_future
from ..serve.server import InferenceServer
from ..session import Session
from ..snn.numerics import NumericsPolicy
from .framing import FrameError, FramedConnection, Message, request_to_wire
from .store import ReplicatedResultStore

__all__ = ["Coordinator", "DispatchedBatch"]

#: Errors that mean "this worker's connection is gone" (mirrors
#: ``DISPATCH_ERRORS`` in :mod:`repro.backends`: infrastructure death, never
#: a request error).
_LINK_ERRORS = (FrameError, OSError)


class DispatchedBatch:
    """One micro-batch in flight on a worker, tracked for rescue."""

    __slots__ = ("batch_id", "requests", "worker_id", "dispatched_at", "deadline")

    def __init__(self, batch_id: int, requests: List[InferenceRequest],
                 worker_id: str):
        self.batch_id = batch_id
        self.requests = requests
        self.worker_id = worker_id
        self.dispatched_at = time.monotonic()
        deadlines = [r.deadline for r in requests if r.deadline is not None]
        #: the earliest deadline in the batch (monotonic) or None
        self.deadline = min(deadlines) if deadlines else None


class _WorkerLink:
    """Coordinator-side state of one registered worker connection.

    Every field after construction is mutated only under the owning
    coordinator's ``_net_lock``; the link itself holds no lock.
    """

    def __init__(self, worker_id: str, connection: FramedConnection,
                 pid: Optional[int] = None):
        self.worker_id = worker_id
        self.connection = connection
        self.pid = pid
        self.registered_at = time.time()
        self.last_heartbeat = time.time()
        self.last_lag_ms = 0.0
        self.dispatches = 0
        self.results = 0
        self.local_hits = 0
        self.rescued_from = 0
        self.alive = True
        self.stats: Dict[str, object] = {}
        self.inflight: Dict[int, DispatchedBatch] = {}
        self.thread: Optional[threading.Thread] = None


class Coordinator(InferenceServer):
    """Serve traffic through remote worker processes (see module docstring).

    Parameters (beyond the inherited :class:`InferenceServer` ones)
    ----------------------------------------------------------------
    host / port:
        Listen address; ``port=0`` picks a free port — read it back from
        :attr:`address`.
    heartbeat_interval_s:
        Interval workers are told to heartbeat at (handed to them in the
        ``registered`` ack).
    liveness_timeout_s:
        A worker whose last heartbeat is older than this is declared dead
        and its in-flight batches are rescued.
    stall_timeout_s:
        Rescue any batch in flight longer than this even if its worker
        still heartbeats (``None`` disables the flat bound).
    deadline_margin_s:
        Deadline-aware rescue: a batch still in flight when a request's
        deadline is closer than this margin is re-queued (once per
        request) so a healthy worker can still beat the deadline.
    pull_wait_s:
        How long one ``pull`` blocks server-side waiting for traffic
        before answering ``idle`` (paces the idle pull loop).
    drain_timeout_s:
        Upper bound :meth:`close(drain=True) <close>` waits for queued and
        in-flight work to finish.
    """

    _MIN_WORKERS = 0  # execution happens in remote worker processes, not threads

    def __init__(
        self,
        session: Optional[Session] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch: int = 16,
        max_wait_ms: float = 5.0,
        max_queue: int = 256,
        default_deadline_s: Optional[float] = None,
        metrics: Optional[MetricsRegistry] = None,
        default_numerics: Optional[NumericsPolicy] = None,
        heartbeat_interval_s: float = 0.2,
        liveness_timeout_s: float = 1.5,
        stall_timeout_s: Optional[float] = None,
        deadline_margin_s: float = 0.5,
        pull_wait_s: float = 0.2,
        drain_timeout_s: float = 30.0,
    ):
        super().__init__(
            session=session,
            workers=0,
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            max_queue=max_queue,
            default_deadline_s=default_deadline_s,
            metrics=metrics,
            default_numerics=default_numerics,
        )
        self.heartbeat_interval_s = heartbeat_interval_s
        self.liveness_timeout_s = liveness_timeout_s
        self.stall_timeout_s = stall_timeout_s
        self.deadline_margin_s = deadline_margin_s
        self.pull_wait_s = pull_wait_s
        self.drain_timeout_s = drain_timeout_s
        self.net_store = ReplicatedResultStore(
            self.session.store, publish=self._replicate
        )
        self._net_lock = threading.Lock()
        self._links: Dict[str, _WorkerLink] = {}
        self._worker_ids = itertools.count(1)
        self._batch_ids = itertools.count(1)
        self._collecting = 0
        self._shutting_down = False
        self._deadline_rescued: set = set()
        self._stop_monitor = threading.Event()
        # Declare the cluster telemetry surface up front (same convention as
        # the parent: every snapshot has every key, zeroed or not).
        for counter in ("net.dispatches", "net.results", "net.rescues",
                        "net.redispatched_requests", "net.dispatch_short_circuits",
                        "net.heartbeats", "net.store_replications",
                        "net.workers_registered", "net.workers_lost"):
            self.metrics.counter(counter)
        for histogram in ("net.heartbeat_lag_ms", "net.batch_rtt_ms"):
            self.metrics.histogram(histogram)
        self.metrics.gauge("net.workers").set(0)
        self.metrics.add_probe("net.workers_detail", self._workers_probe)
        self.metrics.add_probe("net.bytes", self._bytes_probe)
        self.metrics.add_probe("net.store", self.net_store.stats)
        self._listener = socket.create_server((host, port))
        #: the bound ``(host, port)`` workers connect to
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-net-accept", daemon=True
        )
        self._monitor_thread = threading.Thread(
            target=self._monitor_loop, name="repro-net-monitor", daemon=True
        )
        self._accept_thread.start()
        self._monitor_thread.start()

    # -- registration -------------------------------------------------------
    def _accept_loop(self) -> None:
        while True:
            try:
                sock, _peer = self._listener.accept()
            except OSError:
                return  # listener closed: shutdown
            connection = FramedConnection(sock)
            try:
                hello = connection.recv()
                if hello.kind != "register":
                    raise FrameError(
                        f"expected a register message, got {hello.kind!r}"
                    )
            except _LINK_ERRORS:
                connection.close()
                continue
            self._register_worker(connection, hello)

    def _register_worker(self, connection: FramedConnection,
                         hello: Message) -> None:
        serial = next(self._worker_ids)
        requested = hello.get("worker_id")
        with self._net_lock:
            worker_id = str(requested) if requested else f"worker-{serial}"
            if worker_id in self._links:
                worker_id = f"{worker_id}-{serial}"
            link = _WorkerLink(worker_id, connection, pid=hello.get("pid"))
            self._links[worker_id] = link
        try:
            connection.send(
                "registered",
                worker_id=worker_id,
                heartbeat_interval_s=self.heartbeat_interval_s,
                coordinator_pid=os.getpid(),
            )
        except _LINK_ERRORS as error:
            self._lose_worker(link, error)
            return
        self.metrics.counter("net.workers_registered").inc()
        self._refresh_worker_gauge()
        thread = threading.Thread(
            target=self._serve_worker,
            args=(link,),
            name=f"repro-net-{worker_id}",
            daemon=True,
        )
        with self._net_lock:
            link.thread = thread
        thread.start()

    def wait_for_workers(self, count: int, timeout: float = 10.0) -> bool:
        """Block until ``count`` workers are registered and alive."""
        end = time.monotonic() + timeout
        while time.monotonic() < end:
            if self.live_workers() >= count:
                return True
            time.sleep(0.02)
        return self.live_workers() >= count

    def live_workers(self) -> int:
        """Number of currently registered, live workers."""
        with self._net_lock:
            return sum(1 for link in self._links.values() if link.alive)

    # -- the per-connection protocol loop -----------------------------------
    def _serve_worker(self, link: _WorkerLink) -> None:
        while True:
            try:
                message = link.connection.recv()
            except _LINK_ERRORS as error:
                self._lose_worker(link, error)
                return
            if message.kind == "heartbeat":
                self._on_heartbeat(link, message)
            elif message.kind == "pull":
                try:
                    self._dispatch_to(link)
                except _LINK_ERRORS as error:
                    self._lose_worker(link, error)
                    return
            elif message.kind == "results":
                self._on_results(link, message)
            elif message.kind == "goodbye":
                self._retire_worker(link)
                return
            # unknown kinds are ignored: a newer same-WIRE_VERSION peer may
            # emit kinds this coordinator predates

    def _on_heartbeat(self, link: _WorkerLink, message: Message) -> None:
        now = time.time()
        sent_at = message.get("sent_at")
        lag_ms = max(0.0, (now - sent_at) * 1e3) if sent_at is not None else 0.0
        with self._net_lock:
            link.last_heartbeat = now
            link.last_lag_ms = lag_ms
            link.stats = dict(message.get("stats") or {})
        self.metrics.counter("net.heartbeats").inc()
        self.metrics.histogram("net.heartbeat_lag_ms").observe(lag_ms)

    # -- dispatch -----------------------------------------------------------
    def _cluster_idle(self) -> bool:
        """Closed, drained and nothing in flight: workers may shut down."""
        if not self.queue.closed or self.queue.depth():
            return False
        with self._net_lock:
            inflight = sum(len(link.inflight) for link in self._links.values())
            return inflight == 0 and self._collecting == 0

    def _dispatch_to(self, link: _WorkerLink) -> None:
        """Answer one ``pull``: a batch, ``idle``, or ``shutdown``."""
        if self._cluster_idle():
            link.connection.send("shutdown")
            return
        with self._net_lock:
            self._collecting += 1
        try:
            first = self.queue.pop(timeout=self.pull_wait_s)
            if first is None:
                link.connection.send("idle")
                return
            batch = self.batcher.collect(self.queue, first)
            batch = self._short_circuit(batch)
            if not batch:
                link.connection.send("idle")
                return
            self._send_batch(link, batch)
        finally:
            with self._net_lock:
                self._collecting -= 1

    def _short_circuit(self, batch: List[InferenceRequest]) -> List[InferenceRequest]:
        """Resolve requests already stored (e.g. replicated from a worker, or
        computed by a stalled worker after its batch was rescued) without
        dispatching them; returns the remainder."""
        pending: List[InferenceRequest] = []
        now = time.monotonic()
        for request in batch:
            hit = self.net_store.get(request.fingerprint)
            if hit is None:
                pending.append(request)
                continue
            self.metrics.counter("net.dispatch_short_circuits").inc()
            if resolve_future(request.future, hit):
                self.metrics.counter("serve.completed").inc()
                self.metrics.histogram("serve.latency_ms").observe(
                    (now - request.enqueued_at) * 1e3
                )
        return pending

    def _send_batch(self, link: _WorkerLink, batch: List[InferenceRequest]) -> None:
        batch_id = next(self._batch_ids)
        dispatched = DispatchedBatch(batch_id, batch, link.worker_id)
        with self._net_lock:
            alive = link.alive
            if alive:
                link.inflight[batch_id] = dispatched
                link.dispatches += 1
        if not alive:
            # Lost between pull and dispatch: hand the batch straight back.
            for request in reversed(batch):
                self.queue.requeue(request)
            return
        link.connection.send(
            "batch",
            batch_id=batch_id,
            requests=[request_to_wire(request) for request in batch],
        )
        self.metrics.counter("net.dispatches").inc()

    # -- results ------------------------------------------------------------
    def _on_results(self, link: _WorkerLink, message: Message) -> None:
        batch_id = message["batch_id"]
        entries = message["results"]
        with self._net_lock:
            dispatched = link.inflight.pop(batch_id, None)
            link.results += 1
            link.local_hits += int(message.get("local_hits") or 0)
        now = time.monotonic()
        if dispatched is not None:
            self.metrics.histogram("net.batch_rtt_ms").observe(
                (now - dispatched.dispatched_at) * 1e3
            )
        # Late results (the batch was already rescued) still flow into the
        # store below: the re-queued requests' dispatch-time store check
        # then resolves them without a second engine pass.
        by_id = {
            request.id: request
            for request in (dispatched.requests if dispatched is not None else [])
        }
        completed = 0
        for entry in entries:
            request = by_id.get(entry["id"])
            error = entry.get("error")
            if error is not None:
                self.metrics.counter("serve.errors").inc()
                if request is not None:
                    resolve_future(request.future, error=error)
                continue
            self.net_store.put(entry["fingerprint"], entry["result"])
            if request is not None:
                if resolve_future(request.future, entry["result"]):
                    completed += 1
                self.metrics.histogram("serve.latency_ms").observe(
                    (now - request.enqueued_at) * 1e3
                )
                self._deadline_rescued.discard(request.id)
        self.metrics.counter("serve.completed").inc(completed)
        self.metrics.counter("net.results").inc()

    def _replicate(self, fingerprint: str, result: object) -> None:
        """Publish one stored result to every live worker (``store_put``)."""
        with self._net_lock:
            links = [link for link in self._links.values() if link.alive]
        for link in links:
            try:
                link.connection.send(
                    "store_put", fingerprint=fingerprint, result=result
                )
            except _LINK_ERRORS:
                pass  # the link's own handler thread will reap it
        self.metrics.counter("net.store_replications").inc(len(links))

    # -- liveness and rescue ------------------------------------------------
    def _monitor_loop(self) -> None:
        interval = min(0.05, self.liveness_timeout_s / 4)
        while not self._stop_monitor.wait(interval):
            self._reap_dead()
            self._rescue_stalled()

    def _reap_dead(self) -> None:
        horizon = time.time() - self.liveness_timeout_s
        with self._net_lock:
            dead = [
                link for link in self._links.values()
                if link.alive and link.last_heartbeat < horizon
            ]
        for link in dead:
            self._lose_worker(
                link,
                TimeoutError(
                    f"worker {link.worker_id} sent no heartbeat for "
                    f"{self.liveness_timeout_s}s"
                ),
            )

    def _should_rescue_locked(self, batch: DispatchedBatch, now: float) -> bool:
        """Rescue policy for an in-flight batch; caller holds ``_net_lock``."""
        if (
            self.stall_timeout_s is not None
            and now - batch.dispatched_at >= self.stall_timeout_s
        ):
            return True
        if batch.deadline is not None and now >= batch.deadline - self.deadline_margin_s:
            # Deadline-aware rescue fires once per request: the trigger is
            # absolute time, so without this guard a re-dispatched batch
            # would be "rescued" again every monitor tick until the
            # deadline actually passes.
            pending = [
                request.id for request in batch.requests
                if not request.future.done()
            ]
            fresh = [rid for rid in pending if rid not in self._deadline_rescued]
            if fresh:
                self._deadline_rescued.update(pending)
                return True
        return False

    def _rescue_stalled(self) -> None:
        now = time.monotonic()
        rescued: List[Tuple[_WorkerLink, DispatchedBatch]] = []
        with self._net_lock:
            for link in self._links.values():
                if not link.alive:
                    continue
                for batch_id, batch in list(link.inflight.items()):
                    if self._should_rescue_locked(batch, now):
                        del link.inflight[batch_id]
                        rescued.append((link, batch))
        for link, batch in rescued:
            self._requeue_batch(link, batch)

    def _requeue_batch(self, link: _WorkerLink, batch: DispatchedBatch) -> None:
        """Re-dispatch a batch's unresolved requests at the queue head."""
        pending = [
            request for request in batch.requests if not request.future.done()
        ]
        # appendleft in reverse keeps the batch's FIFO order at the head, so
        # it re-collects as one compatible micro-batch.
        for request in reversed(pending):
            self.queue.requeue(request)
        if pending:
            self.metrics.counter("net.rescues").inc()
            self.metrics.counter("net.redispatched_requests").inc(len(pending))
            with self._net_lock:
                link.rescued_from += 1

    def _lose_worker(self, link: _WorkerLink, error: BaseException) -> None:
        with self._net_lock:
            if not link.alive:
                return
            link.alive = False
            orphaned = list(link.inflight.values())
            link.inflight.clear()
            shutting_down = self._shutting_down
        link.connection.close()
        self._refresh_worker_gauge()
        if not shutting_down:
            self.metrics.counter("net.workers_lost").inc()
        for batch in orphaned:
            self._requeue_batch(link, batch)

    def _retire_worker(self, link: _WorkerLink) -> None:
        """A worker said goodbye; any leftovers are rescued, not lost."""
        with self._net_lock:
            if not link.alive:
                return
            link.alive = False
            orphaned = list(link.inflight.values())
            link.inflight.clear()
        link.connection.close()
        self._refresh_worker_gauge()
        for batch in orphaned:
            self._requeue_batch(link, batch)

    # -- observability ------------------------------------------------------
    def _refresh_worker_gauge(self) -> None:
        self.metrics.gauge("net.workers").set(float(self.live_workers()))

    def _workers_probe(self) -> Dict[str, object]:
        with self._net_lock:
            return {
                link.worker_id: {
                    "alive": link.alive,
                    "pid": link.pid,
                    "dispatches": link.dispatches,
                    "results": link.results,
                    "local_hits": link.local_hits,
                    "rescued_from": link.rescued_from,
                    "inflight": len(link.inflight),
                    "heartbeat_lag_ms": link.last_lag_ms,
                    "bytes_sent": link.connection.bytes_sent,
                    "bytes_received": link.connection.bytes_received,
                    "stats": dict(link.stats),
                }
                for link in self._links.values()
            }

    def _bytes_probe(self) -> Dict[str, float]:
        with self._net_lock:
            links = list(self._links.values())
        return {
            "sent": float(sum(l.connection.bytes_sent for l in links)),
            "received": float(sum(l.connection.bytes_received for l in links)),
        }

    # -- lifecycle ----------------------------------------------------------
    def _wait_drained(self, timeout: float) -> bool:
        end = time.monotonic() + timeout
        while time.monotonic() < end:
            if self._cluster_idle():
                return True
            time.sleep(0.02)
        return False

    def close(self, drain: bool = True) -> None:
        """Drain (by default), shut every worker down, release the port.

        ``drain=True`` waits — bounded by ``drain_timeout_s`` — until the
        queue is empty and no batch is in flight (rescues keep running
        throughout, so a worker dying mid-drain cannot wedge it), then
        broadcasts ``shutdown``.  ``drain=False`` fails queued requests
        with :class:`~repro.serve.queue.ServerClosed` immediately.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        self.queue.close()
        if drain:
            self._wait_drained(self.drain_timeout_s)
        else:
            cancelled = self.queue.cancel_pending()
            self.metrics.counter("serve.cancelled").inc(cancelled)
        with self._net_lock:
            self._shutting_down = True
            links = list(self._links.values())
        self._stop_monitor.set()
        self._listener.close()
        for link in links:
            if link.alive:
                try:
                    link.connection.send("shutdown")
                except _LINK_ERRORS:
                    pass
        # Give workers a moment to say goodbye, then cut the cords so every
        # handler thread unblocks.
        deadline = time.monotonic() + 2.0
        while time.monotonic() < deadline and self.live_workers():
            time.sleep(0.02)
        for link in links:
            link.connection.close()
        for link in links:
            if link.thread is not None:
                link.thread.join(timeout=5.0)
        self._accept_thread.join(timeout=5.0)
        self._monitor_thread.join(timeout=5.0)
        if self._owns_session:
            self.session.close()
