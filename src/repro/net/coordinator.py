"""The coordinator: admission front of a multi-host serving cluster.

:class:`Coordinator` subclasses :class:`repro.serve.server.InferenceServer`
with ``workers=0``: the whole single-host admission surface — bounded
:class:`~repro.serve.queue.RequestQueue` backpressure, deadlines, the
result-store short-circuit, ``submit_statistical`` / ``submit_functional``,
telemetry — is inherited unchanged, and instead of local worker threads the
queue is drained by *remote worker processes* speaking the
:mod:`repro.net.framing` wire protocol (v2).

Dispatch is credit-based and pushed.  A worker registers advertising a
*credit window* — how many batches may be outstanding on its link — and a
single dispatcher thread drains the queue: it waits for traffic, picks the
least-loaded worker with free credit, lets the inherited
:class:`~repro.serve.batcher.MicroBatcher` collect a fingerprint-compatible
micro-batch behind the head, re-checks the result store per request (a
result replicated from another worker since admission resolves right here —
the cluster-wide short-circuit), records the remainder as an in-flight
:class:`DispatchedBatch` and ships it.  With ``credit > 1`` the next batch
is already sitting in the worker's socket buffer while the previous one
computes, so the wire round-trip that used to serialize every
``pull -> batch -> results`` cycle overlaps with execution.  Results stream
back asynchronously; each one lands in the
:class:`~repro.net.store.ReplicatedResultStore` (which broadcasts
``store_put`` to every *other* worker — the producer already has it),
resolves the caller's future, and refills the link's credit, waking the
dispatcher.

Large arrays ride the frame protocol's content-addressed blob cache
(:class:`~repro.net.blob.BlobCache`, shared across every link): network
weight panels cross each link once, after which batches reference them by
digest (``net.blob.*`` telemetry counts the savings).

Failure semantics — the generalization of
:class:`~repro.backends.ShardedBackend`'s rescue worker:

* **dead worker** — heartbeats stop for longer than ``liveness_timeout_s``
  (or the connection drops): every in-flight request of that worker whose
  future is still pending — up to a *full credit window* of batches — is
  re-queued *at the head* of the request queue
  (:meth:`~repro.serve.queue.RequestQueue.requeue`), so the dispatcher
  ships it to a healthy worker before fresh traffic.  No future is ever
  lost.
* **stalled worker** — still heartbeating but sitting on a batch: rescued
  when the batch has been in flight longer than ``stall_timeout_s`` (when
  set), or — deadline-aware — when a request's deadline is closer than
  ``deadline_margin_s``.  The slow worker's late results are *not*
  discarded: they land in the replicated store, where the re-queued
  requests' dispatch-time store check resolves them without a second
  engine pass; double resolution is absorbed by
  :func:`~repro.serve.queue.resolve_future` (first outcome wins).

Per-worker telemetry (dispatches, rescues, heartbeat lag, bytes on wire —
total and per message kind — plus blob-cache savings) merges into the
inherited :class:`~repro.serve.metrics.MetricsRegistry` under ``net.*``
names, so one :meth:`stats` snapshot covers admission, batching and the
cluster.
"""

from __future__ import annotations

import itertools
import os
import socket
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..serve.metrics import MetricsRegistry
from ..serve.queue import InferenceRequest, resolve_future
from ..serve.server import InferenceServer
from ..session import Session
from ..snn.numerics import NumericsPolicy
from .blob import BlobCache
from .framing import FrameError, FramedConnection, Message, request_to_wire
from .store import ReplicatedResultStore
from .worker import DEFAULT_CREDIT

__all__ = ["Coordinator", "DispatchedBatch"]

#: Errors that mean "this worker's connection is gone" (mirrors
#: ``DISPATCH_ERRORS`` in :mod:`repro.backends`: infrastructure death, never
#: a request error).
_LINK_ERRORS = (FrameError, OSError)


class DispatchedBatch:
    """One micro-batch in flight on a worker, tracked for rescue."""

    __slots__ = ("batch_id", "requests", "worker_id", "dispatched_at",
                 "deadline", "span")

    def __init__(self, batch_id: int, requests: List[InferenceRequest],
                 worker_id: str):
        self.batch_id = batch_id
        self.requests = requests
        self.worker_id = worker_id
        self.dispatched_at = time.monotonic()
        deadlines = [r.deadline for r in requests if r.deadline is not None]
        #: the earliest deadline in the batch (monotonic) or None
        self.deadline = min(deadlines) if deadlines else None
        #: the dispatch span covering this batch's sampled traces (None when
        #: tracing is off); finished by the results handler or a rescue
        self.span = None


class _WorkerLink:
    """Coordinator-side state of one registered worker connection.

    Every field after construction is mutated only under the owning
    coordinator's ``_net_lock``; the link itself holds no lock.
    """

    def __init__(self, worker_id: str, connection: FramedConnection,
                 pid: Optional[int] = None, credit: int = DEFAULT_CREDIT):
        self.worker_id = worker_id
        self.connection = connection
        self.pid = pid
        #: batches the dispatcher may keep outstanding on this link
        self.credit = max(1, int(credit))
        self.registered_at = time.time()
        self.last_heartbeat = time.time()
        self.last_lag_ms = 0.0
        self.dispatches = 0
        self.results = 0
        self.local_hits = 0
        self.rescued_from = 0
        self.alive = True
        self.stats: Dict[str, object] = {}
        self.inflight: Dict[int, DispatchedBatch] = {}
        self.thread: Optional[threading.Thread] = None


class Coordinator(InferenceServer):
    """Serve traffic through remote worker processes (see module docstring).

    Parameters (beyond the inherited :class:`InferenceServer` ones)
    ----------------------------------------------------------------
    host / port:
        Listen address; ``port=0`` picks a free port — read it back from
        :attr:`address`.
    heartbeat_interval_s:
        Interval workers are told to heartbeat at (handed to them in the
        ``registered`` ack).
    liveness_timeout_s:
        A worker whose last heartbeat is older than this is declared dead
        and its in-flight batches are rescued.
    stall_timeout_s:
        Rescue any batch in flight longer than this even if its worker
        still heartbeats (``None`` disables the flat bound).
    deadline_margin_s:
        Deadline-aware rescue: a batch still in flight when a request's
        deadline is closer than this margin is re-queued (once per
        request) so a healthy worker can still beat the deadline.
    pull_wait_s:
        Idle pacing of the dispatcher: how long it blocks waiting for
        traffic or freed credit before re-checking.
    drain_timeout_s:
        Upper bound :meth:`close(drain=True) <close>` waits for queued and
        in-flight work to finish.
    blob_threshold / wire_compress:
        Wire-protocol knobs for every worker link — the array size at
        which payloads turn into content digests (``None`` keeps the
        :data:`~repro.net.framing.BLOB_THRESHOLD_BYTES` default), and
        whether buffers are deflated on send (worth it for sparse spike
        tensors, pure overhead for dense weights).
    """

    _MIN_WORKERS = 0  # execution happens in remote worker processes, not threads

    def __init__(
        self,
        session: Optional[Session] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch: int = 16,
        max_wait_ms: float = 5.0,
        max_queue: int = 256,
        default_deadline_s: Optional[float] = None,
        metrics: Optional[MetricsRegistry] = None,
        default_numerics: Optional[NumericsPolicy] = None,
        heartbeat_interval_s: float = 0.2,
        liveness_timeout_s: float = 1.5,
        stall_timeout_s: Optional[float] = None,
        deadline_margin_s: float = 0.5,
        pull_wait_s: float = 0.2,
        drain_timeout_s: float = 30.0,
        blob_threshold: Optional[int] = None,
        wire_compress: bool = False,
        tracer=None,
    ):
        super().__init__(
            session=session,
            workers=0,
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            max_queue=max_queue,
            default_deadline_s=default_deadline_s,
            metrics=metrics,
            default_numerics=default_numerics,
            tracer=tracer,
        )
        self.heartbeat_interval_s = heartbeat_interval_s
        self.liveness_timeout_s = liveness_timeout_s
        self.stall_timeout_s = stall_timeout_s
        self.deadline_margin_s = deadline_margin_s
        self.pull_wait_s = pull_wait_s
        self.drain_timeout_s = drain_timeout_s
        self.blob_threshold = blob_threshold
        self.wire_compress = wire_compress
        #: one cache across every link: a blob registered while encoding
        #: for one worker answers any worker's ``__need_blob__``
        self.blob_cache = BlobCache()
        self.net_store = ReplicatedResultStore(
            self.session.store, publish=self._replicate,
            publish_many=self._replicate_many,
        )
        self._net_lock = threading.Lock()
        self._links: Dict[str, _WorkerLink] = {}
        self._worker_ids = itertools.count(1)
        self._batch_ids = itertools.count(1)
        self._collecting = 0
        #: write-behind replication buffer: ``(entries, origin)`` per
        #: results frame, plus the monotonic stamp of the oldest buffered
        #: frame (see ``_replicate_many``).  Guarded by ``_net_lock``.
        self._replication_pending: List[Tuple[List[Dict[str, object]], Optional[str]]] = []
        self._replication_stamp: Optional[float] = None
        #: oldest a buffered replication entry may grow before the monitor
        #: flushes it even under sustained load
        self.replication_flush_s = 0.5
        self._shutting_down = False
        self._deadline_rescued: set = set()
        self._stop_monitor = threading.Event()
        self._stop_dispatch = threading.Event()
        # Wakes the dispatcher when credit frees up (results, registration,
        # worker loss).  A plain Event, NOT a Condition on _net_lock: the
        # lock tracer swaps _net_lock after construction, and a Condition
        # bound to the original lock would dodge the instrumentation.
        self._dispatch_wake = threading.Event()
        # Declare the cluster telemetry surface up front (same convention as
        # the parent: every snapshot has every key, zeroed or not).
        for counter in ("net.dispatches", "net.results", "net.rescues",
                        "net.redispatched_requests", "net.dispatch_short_circuits",
                        "net.heartbeats", "net.store_replications",
                        "net.workers_registered", "net.workers_lost",
                        "net.credit_stalls"):
            self.metrics.counter(counter)
        for histogram in ("net.heartbeat_lag_ms", "net.batch_rtt_ms"):
            self.metrics.histogram(histogram)
        self.metrics.gauge("net.workers").set(0)
        self.metrics.add_probe("net.workers_detail", self._workers_probe)
        self.metrics.add_probe("net.bytes", self._bytes_probe)
        self.metrics.add_probe("net.blob", self._blob_probe)
        self.metrics.add_probe("net.store", self.net_store.stats)
        self._listener = socket.create_server((host, port))
        #: the bound ``(host, port)`` workers connect to
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-net-accept", daemon=True
        )
        self._monitor_thread = threading.Thread(
            target=self._monitor_loop, name="repro-net-monitor", daemon=True
        )
        self._dispatch_thread = threading.Thread(
            target=self._dispatch_loop, name="repro-net-dispatch", daemon=True
        )
        self._accept_thread.start()
        self._monitor_thread.start()
        self._dispatch_thread.start()

    # -- registration -------------------------------------------------------
    def _accept_loop(self) -> None:
        while True:
            try:
                sock, _peer = self._listener.accept()
            except OSError:
                return  # listener closed: shutdown
            connection = FramedConnection(
                sock,
                blob_cache=self.blob_cache,
                blob_threshold=self.blob_threshold,
                compress=self.wire_compress,
            )
            try:
                hello = connection.recv()
                if hello.kind != "register":
                    raise FrameError(
                        f"expected a register message, got {hello.kind!r}"
                    )
            except _LINK_ERRORS:
                connection.close()
                continue
            self._register_worker(connection, hello)

    def _register_worker(self, connection: FramedConnection,
                         hello: Message) -> None:
        serial = next(self._worker_ids)
        requested = hello.get("worker_id")
        credit = hello.get("credit") or DEFAULT_CREDIT
        with self._net_lock:
            worker_id = str(requested) if requested else f"worker-{serial}"
            if worker_id in self._links:
                worker_id = f"{worker_id}-{serial}"
            link = _WorkerLink(worker_id, connection, pid=hello.get("pid"),
                               credit=int(credit))
            self._links[worker_id] = link
        try:
            connection.send(
                "registered",
                worker_id=worker_id,
                heartbeat_interval_s=self.heartbeat_interval_s,
                coordinator_pid=os.getpid(),
            )
        except _LINK_ERRORS as error:
            self._lose_worker(link, error)
            return
        self.metrics.counter("net.workers_registered").inc()
        self._refresh_worker_gauge()
        thread = threading.Thread(
            target=self._serve_worker,
            args=(link,),
            name=f"repro-net-{worker_id}",
            daemon=True,
        )
        with self._net_lock:
            link.thread = thread
        thread.start()
        self._dispatch_wake.set()  # fresh credit available

    def wait_for_workers(self, count: int, timeout: float = 10.0) -> bool:
        """Block until ``count`` workers are registered and alive."""
        end = time.monotonic() + timeout
        while time.monotonic() < end:
            if self.live_workers() >= count:
                return True
            time.sleep(0.02)
        return self.live_workers() >= count

    def live_workers(self) -> int:
        """Number of currently registered, live workers."""
        with self._net_lock:
            return sum(1 for link in self._links.values() if link.alive)

    # -- the per-connection protocol loop -----------------------------------
    def _serve_worker(self, link: _WorkerLink) -> None:
        while True:
            try:
                message = link.connection.recv()
            except _LINK_ERRORS as error:
                self._lose_worker(link, error)
                return
            # Any inbound frame proves the worker alive — a link thread
            # spending seconds in _on_results must not let the heartbeat
            # stamp age past the liveness horizon meanwhile.
            with self._net_lock:
                link.last_heartbeat = time.time()
            if message.kind == "heartbeat":
                self._on_heartbeat(link, message)
            elif message.kind == "pull":
                # v2 readiness signal (sent once after registration); work
                # is pushed by the dispatcher, so just nudge it.
                self._dispatch_wake.set()
            elif message.kind == "results":
                self._on_results(link, message)
            elif message.kind == "goodbye":
                self._retire_worker(link)
                return
            # unknown kinds are ignored: a newer same-WIRE_VERSION peer may
            # emit kinds this coordinator predates

    def _on_heartbeat(self, link: _WorkerLink, message: Message) -> None:
        now = time.time()
        sent_at = message.get("sent_at")
        lag_ms = max(0.0, (now - sent_at) * 1e3) if sent_at is not None else 0.0
        with self._net_lock:
            link.last_heartbeat = now
            link.last_lag_ms = lag_ms
            link.stats = dict(message.get("stats") or {})
        self.metrics.counter("net.heartbeats").inc()
        self.metrics.histogram("net.heartbeat_lag_ms").observe(lag_ms)

    # -- dispatch -----------------------------------------------------------
    def _cluster_idle(self) -> bool:
        """Closed, drained and nothing in flight: workers may shut down."""
        if not self.queue.closed or self.queue.depth():
            return False
        with self._net_lock:
            inflight = sum(len(link.inflight) for link in self._links.values())
            return inflight == 0 and self._collecting == 0

    def _pick_worker(self) -> Optional[_WorkerLink]:
        """The least-loaded live worker with free credit, or ``None``."""
        with self._net_lock:
            candidates = [
                link for link in self._links.values()
                if link.alive and len(link.inflight) < link.credit
            ]
            if not candidates:
                return None
            return min(
                candidates,
                key=lambda link: (len(link.inflight), link.dispatches),
            )

    def _dispatch_loop(self) -> None:
        """Drain the queue into worker credit windows (single dispatcher).

        The ``_collecting`` guard brackets pop -> collect -> send so
        :meth:`_cluster_idle` cannot report a drained cluster while a
        popped batch is between the queue and a link's in-flight table.
        """
        while not self._stop_dispatch.is_set():
            if not self.queue.wait_nonempty(self.pull_wait_s):
                continue
            if self._pick_worker() is None:
                # Traffic is waiting but every credit window is full (or no
                # worker is up yet): block until results/registration free
                # capacity rather than spinning on the queue head.
                self.metrics.counter("net.credit_stalls").inc()
                self._dispatch_wake.wait(self.pull_wait_s)
                self._dispatch_wake.clear()
                continue
            with self._net_lock:
                self._collecting += 1
            try:
                first = self.queue.pop(timeout=0.01)
                if first is None:
                    continue
                batch = self.batcher.collect(self.queue, first)
                batch = self._short_circuit(batch)
                if not batch:
                    continue
                link = self._pick_worker()
                if link is None:
                    # Credit vanished while collecting (the worker died);
                    # hand the batch back in order for the next pick.
                    for request in reversed(batch):
                        self.queue.requeue(request)
                    continue
                try:
                    self._send_batch(link, batch)
                except _LINK_ERRORS as error:
                    # _send_batch registered the in-flight entry first, so
                    # losing the worker re-queues the batch — never lost.
                    self._lose_worker(link, error)
            finally:
                with self._net_lock:
                    self._collecting -= 1

    def _short_circuit(self, batch: List[InferenceRequest]) -> List[InferenceRequest]:
        """Resolve requests already stored (e.g. replicated from a worker, or
        computed by a stalled worker after its batch was rescued) without
        dispatching them; returns the remainder."""
        pending: List[InferenceRequest] = []
        now = time.monotonic()
        for request in batch:
            hit = self.net_store.get(request.fingerprint)
            if hit is None:
                pending.append(request)
                continue
            self.metrics.counter("net.dispatch_short_circuits").inc()
            if resolve_future(request.future, hit):
                self.metrics.counter("serve.completed").inc()
                self.metrics.histogram("serve.latency_ms").observe(
                    (now - request.enqueued_at) * 1e3
                )
        return pending

    def _send_batch(self, link: _WorkerLink, batch: List[InferenceRequest]) -> None:
        batch_id = next(self._batch_ids)
        dispatched = DispatchedBatch(batch_id, batch, link.worker_id)
        # Open the dispatch span BEFORE the batch becomes rescuable (it is
        # registered in ``inflight`` below, and the wire copy of each trace
        # context must already parent under this span).  A rescue of this
        # batch links the span as a follow-from on the re-dispatch.
        ctxs = self.tracer.sampled(batch)
        if ctxs:
            follows: List[str] = []
            for ctx in ctxs:
                if ctx.follows is not None:
                    if ctx.follows not in follows:
                        follows.append(ctx.follows)
                    ctx.follows = None
            dispatched.span = self.tracer.open_span(
                "dispatch", ctxs, follows=follows,
                worker=link.worker_id, requests=len(batch),
            )
            for ctx in ctxs:
                ctx.parent_id = dispatched.span.id
        with self._net_lock:
            alive = link.alive
            if alive:
                link.inflight[batch_id] = dispatched
                link.dispatches += 1
        if not alive:
            # Lost between pick and dispatch: hand the batch straight back.
            self._mark_rescued(dispatched)
            for request in reversed(batch):
                self.queue.requeue(request)
            return
        link.connection.send(
            "batch",
            batch_id=batch_id,
            requests=[request_to_wire(request) for request in batch],
        )
        self.metrics.counter("net.dispatches").inc()

    def _mark_rescued(self, batch: DispatchedBatch) -> None:
        """Close a doomed dispatch span and chain its lineage forward.

        The span finishes with ``status="rescued"``, and every still-pending
        sampled trace records it as the follow-from of its *next* dispatch
        span; ``wait_from`` restarts the queue-wait clock at the requeue
        (``enqueued_at`` is latency accounting and is never restamped).
        """
        if batch.span is None:
            return
        batch.span.finish(status="rescued")
        now = time.monotonic()
        for request in batch.requests:
            trace = request.trace
            if trace is None or not trace.sampled or request.future.done():
                continue
            trace.follows = batch.span.id
            trace.wait_from = now
            trace.parent_id = trace.root_id

    # -- results ------------------------------------------------------------
    def _on_results(self, link: _WorkerLink, message: Message) -> None:
        batch_id = message["batch_id"]
        entries = message["results"]
        with self._net_lock:
            dispatched = link.inflight.pop(batch_id, None)
            link.results += 1
            link.local_hits += int(message.get("local_hits") or 0)
        now = time.monotonic()
        if dispatched is not None:
            self.metrics.histogram("net.batch_rtt_ms").observe(
                (now - dispatched.dispatched_at) * 1e3
            )
            # Stitch the worker's spans into the local traces (rebased onto
            # this process's clock) and close the dispatch span BEFORE any
            # future resolves — the root span finishes from the future's
            # done-callback, and a trace completes only once every span is
            # closed, so ordering here is what makes traces whole.  Late
            # frames (dispatched is None: the batch was already rescued)
            # skip adoption — their traces re-dispatched elsewhere.
            spans = message.get("spans")
            if spans:
                self.tracer.adopt(
                    spans, dispatched.dispatched_at, now,
                    remote_clock=message.get("span_clock"),
                )
            if dispatched.span is not None:
                dispatched.span.finish()
        # Late results (the batch was already rescued) still flow into the
        # store below: the re-queued requests' dispatch-time store check
        # then resolves them without a second engine pass.
        by_id = {
            request.id: request
            for request in (dispatched.requests if dispatched is not None else [])
        }
        completed = 0
        # Store + replicate the whole frame in one batched put BEFORE the
        # futures resolve (a caller reading cluster telemetry right after
        # its future fires must see the replication already counted).
        # Batching means the broadcast costs one store_put_many frame per
        # results frame instead of a frame (and a worker wakeup) per
        # result; adopt=True skips the store's defensive deep copy — the
        # entries were just decoded off the wire, so they are already this
        # process's private (array-frozen) copies.
        self.net_store.put_many(
            [(entry["fingerprint"], entry["result"]) for entry in entries
             if entry.get("error") is None],
            origin=link.worker_id,
            adopt=True,
        )
        for entry in entries:
            request = by_id.get(entry["id"])
            error = entry.get("error")
            if error is not None:
                self.metrics.counter("serve.errors").inc()
                if request is not None:
                    resolve_future(request.future, error=error)
                continue
            if request is not None:
                if resolve_future(request.future, entry["result"]):
                    completed += 1
                self.metrics.histogram("serve.latency_ms").observe(
                    (now - request.enqueued_at) * 1e3
                )
                self._deadline_rescued.discard(request.id)
        self.metrics.counter("serve.completed").inc(completed)
        self.metrics.counter("net.results").inc()
        self._dispatch_wake.set()  # credit freed on this link

    def _replicate(self, fingerprint: str, result: object,
                   origin: Optional[str] = None) -> None:
        """Publish one stored result to every live worker.

        ``origin`` — the worker that produced the result — is skipped: its
        local store already holds the entry (replication rides the blob
        dedup too, so even the skipped bytes would mostly have been digest
        references, but zero frames beat small frames).
        """
        self._replicate_many([(fingerprint, result)], origin=origin)

    def _replicate_many(self, pairs: Sequence[Tuple[str, object]],
                        origin: Optional[str] = None) -> None:
        """Queue a results frame's entries for write-behind replication.

        Replication is cache warming, not correctness — the coordinator's
        own store already short-circuits duplicates at dispatch time — so
        it must never compete with foreground traffic for the one thing a
        busy cluster is short on (CPU for pickling and wire pushes).
        Entries are buffered and flushed as one ``store_put_many`` frame
        per link when the cluster is quiet (synchronously, so telemetry
        read right after a lone request resolves already counts it), when
        the oldest entry exceeds ``replication_flush_s`` (the monitor
        ticks it), or at :meth:`close`.
        """
        entries = [
            {"fingerprint": fingerprint, "result": result}
            for fingerprint, result in pairs
        ]
        if not entries:
            return
        with self._net_lock:
            self._replication_pending.append((entries, origin))
            if self._replication_stamp is None:
                self._replication_stamp = time.monotonic()
        if self._replication_quiet():
            self._flush_replication()

    def _replication_quiet(self) -> bool:
        """No queued traffic, nothing in flight: replication may flush."""
        if self.queue.depth():
            return False
        with self._net_lock:
            inflight = sum(len(link.inflight) for link in self._links.values())
            return inflight == 0 and self._collecting == 0

    def _maybe_flush_replication(self) -> None:
        """Monitor hook: flush a quiet cluster's buffer, or one grown old."""
        with self._net_lock:
            stamp = self._replication_stamp
            if not self._replication_pending:
                return
        aged = stamp is not None and (
            time.monotonic() - stamp >= self.replication_flush_s
        )
        if aged or self._replication_quiet():
            self._flush_replication()

    def _flush_replication(self) -> None:
        """Broadcast every buffered entry now (one frame per link).

        Each link receives the entries every *other* worker produced —
        the origin-skip of the eager design, preserved across batching.
        ``net.store_replications`` still counts per entry per link.
        """
        with self._net_lock:
            pending = self._replication_pending
            self._replication_pending = []
            self._replication_stamp = None
            links = [link for link in self._links.values() if link.alive]
        if not pending or not links:
            return
        replicated = 0
        for link in links:
            entries = [
                entry
                for frame_entries, origin in pending
                if origin != link.worker_id
                for entry in frame_entries
            ]
            if not entries:
                continue
            try:
                link.connection.send("store_put_many", entries=entries)
                replicated += len(entries)
            except _LINK_ERRORS:
                pass  # the link's own handler thread will reap it
        self.metrics.counter("net.store_replications").inc(replicated)

    # -- liveness and rescue ------------------------------------------------
    def _monitor_loop(self) -> None:
        interval = min(0.05, self.liveness_timeout_s / 4)
        while not self._stop_monitor.wait(interval):
            self._reap_dead()
            self._rescue_stalled()
            self._maybe_flush_replication()

    def _reap_dead(self) -> None:
        now = time.time()
        horizon = now - self.liveness_timeout_s
        with self._net_lock:
            dead = []
            for link in self._links.values():
                if not link.alive:
                    continue
                if link.connection.sending:
                    # Mid-transfer — e.g. a multi-megabyte ``__blob__``
                    # answer, compression included — the link thread cannot
                    # read heartbeats off the socket, so their age says
                    # nothing about the worker.  The transfer itself is the
                    # proof of life; the fresh stamp gives the thread a full
                    # liveness window to drain the queued heartbeats once
                    # the send completes.
                    link.last_heartbeat = now
                    continue
                if link.last_heartbeat < horizon:
                    dead.append(link)
        for link in dead:
            self._lose_worker(
                link,
                TimeoutError(
                    f"worker {link.worker_id} sent no heartbeat for "
                    f"{self.liveness_timeout_s}s"
                ),
            )

    def _should_rescue_locked(self, batch: DispatchedBatch, now: float) -> bool:
        """Rescue policy for an in-flight batch; caller holds ``_net_lock``."""
        if (
            self.stall_timeout_s is not None
            and now - batch.dispatched_at >= self.stall_timeout_s
        ):
            return True
        if batch.deadline is not None and now >= batch.deadline - self.deadline_margin_s:
            # Deadline-aware rescue fires once per request: the trigger is
            # absolute time, so without this guard a re-dispatched batch
            # would be "rescued" again every monitor tick until the
            # deadline actually passes.
            pending = [
                request.id for request in batch.requests
                if not request.future.done()
            ]
            fresh = [rid for rid in pending if rid not in self._deadline_rescued]
            if fresh:
                self._deadline_rescued.update(pending)
                return True
        return False

    def _rescue_stalled(self) -> None:
        now = time.monotonic()
        rescued: List[Tuple[_WorkerLink, DispatchedBatch]] = []
        with self._net_lock:
            for link in self._links.values():
                if not link.alive:
                    continue
                for batch_id, batch in list(link.inflight.items()):
                    if self._should_rescue_locked(batch, now):
                        del link.inflight[batch_id]
                        rescued.append((link, batch))
        for link, batch in rescued:
            self._requeue_batch(link, batch)

    def _requeue_batch(self, link: _WorkerLink, batch: DispatchedBatch) -> None:
        """Re-dispatch a batch's unresolved requests at the queue head."""
        self._mark_rescued(batch)
        pending = [
            request for request in batch.requests if not request.future.done()
        ]
        # appendleft in reverse keeps the batch's FIFO order at the head, so
        # it re-collects as one compatible micro-batch.
        for request in reversed(pending):
            self.queue.requeue(request)
        if pending:
            self.metrics.counter("net.rescues").inc()
            self.metrics.counter("net.redispatched_requests").inc(len(pending))
            with self._net_lock:
                link.rescued_from += 1

    def _lose_worker(self, link: _WorkerLink, error: BaseException) -> None:
        with self._net_lock:
            if not link.alive:
                return
            link.alive = False
            orphaned = list(link.inflight.values())
            link.inflight.clear()
            shutting_down = self._shutting_down
        link.connection.close()
        self._refresh_worker_gauge()
        if not shutting_down:
            self.metrics.counter("net.workers_lost").inc()
        for batch in orphaned:
            self._requeue_batch(link, batch)
        self._dispatch_wake.set()  # the candidate set changed

    def _retire_worker(self, link: _WorkerLink) -> None:
        """A worker said goodbye; any leftovers are rescued, not lost."""
        with self._net_lock:
            if not link.alive:
                return
            link.alive = False
            orphaned = list(link.inflight.values())
            link.inflight.clear()
        link.connection.close()
        self._refresh_worker_gauge()
        for batch in orphaned:
            self._requeue_batch(link, batch)
        self._dispatch_wake.set()

    # -- observability ------------------------------------------------------
    def _refresh_worker_gauge(self) -> None:
        self.metrics.gauge("net.workers").set(float(self.live_workers()))

    def _workers_probe(self) -> Dict[str, object]:
        with self._net_lock:
            return {
                link.worker_id: {
                    "alive": link.alive,
                    "pid": link.pid,
                    "credit": link.credit,
                    "dispatches": link.dispatches,
                    "results": link.results,
                    "local_hits": link.local_hits,
                    "rescued_from": link.rescued_from,
                    "inflight": len(link.inflight),
                    "heartbeat_lag_ms": link.last_lag_ms,
                    "bytes_sent": link.connection.bytes_sent,
                    "bytes_received": link.connection.bytes_received,
                    "stats": dict(link.stats),
                }
                for link in self._links.values()
            }

    def _bytes_probe(self) -> Dict[str, object]:
        with self._net_lock:
            links = list(self._links.values())
        sent = received = 0
        sent_by_kind: Dict[str, float] = {}
        received_by_kind: Dict[str, float] = {}
        for link in links:
            sent += link.connection.bytes_sent
            received += link.connection.bytes_received
            by_kind = link.connection.bytes_by_kind()
            for kind, count in by_kind["sent"].items():
                sent_by_kind[kind] = sent_by_kind.get(kind, 0.0) + count
            for kind, count in by_kind["received"].items():
                received_by_kind[kind] = received_by_kind.get(kind, 0.0) + count
        requests = self.metrics.counter("serve.requests").value
        return {
            "sent": float(sent),
            "received": float(received),
            "sent_by_kind": sent_by_kind,
            "received_by_kind": received_by_kind,
            # lifetime wire cost of one admitted request, both directions —
            # the cluster-level figure bench_cluster derives per wave
            "per_request": float(sent + received) / requests if requests else 0.0,
        }

    def _blob_probe(self) -> Dict[str, float]:
        """Cluster blob-cache effectiveness: coordinator-side inbound stats
        plus the worker-side counters each heartbeat carries."""
        with self._net_lock:
            links = list(self._links.values())
            worker_stats = [dict(link.stats) for link in links]
        hits = misses = saved = 0
        for link in links:
            inbound = link.connection.blob_stats
            hits += inbound["blob_hits"]
            misses += inbound["blob_misses"]
            saved += inbound["blob_bytes_saved"]
        for stats in worker_stats:
            hits += int(stats.get("blob_hits") or 0)
            misses += int(stats.get("blob_misses") or 0)
            saved += int(stats.get("blob_bytes_saved") or 0)
        cache = self.blob_cache.stats()
        return {
            "hits": float(hits),
            "misses": float(misses),
            "bytes_saved": float(saved),
            "cache_entries": cache["entries"],
            "cache_bytes": cache["bytes"],
            "cache_evictions": cache["evictions"],
        }

    # -- lifecycle ----------------------------------------------------------
    def _wait_drained(self, timeout: float) -> bool:
        end = time.monotonic() + timeout
        while time.monotonic() < end:
            if self._cluster_idle():
                return True
            time.sleep(0.02)
        return False

    def close(self, drain: bool = True) -> None:
        """Drain (by default), shut every worker down, release the port.

        ``drain=True`` waits — bounded by ``drain_timeout_s`` — until the
        queue is empty and no batch is in flight (rescues keep running
        throughout, so a worker dying mid-drain cannot wedge it), then
        broadcasts ``shutdown``.  ``drain=False`` fails queued requests
        with :class:`~repro.serve.queue.ServerClosed` immediately.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        self.queue.close()
        if drain:
            self._wait_drained(self.drain_timeout_s)
        else:
            cancelled = self.queue.cancel_pending()
            self.metrics.counter("serve.cancelled").inc(cancelled)
        self._stop_dispatch.set()
        self._dispatch_wake.set()
        # Deliver any write-behind replication still buffered before the
        # shutdown broadcast: workers must not lose cache entries to timing.
        self._flush_replication()
        with self._net_lock:
            self._shutting_down = True
            links = list(self._links.values())
        self._stop_monitor.set()
        self._listener.close()
        for link in links:
            if link.alive:
                try:
                    link.connection.send("shutdown")
                except _LINK_ERRORS:
                    pass
        # Give workers a moment to say goodbye, then cut the cords so every
        # handler thread unblocks.
        deadline = time.monotonic() + 2.0
        while time.monotonic() < deadline and self.live_workers():
            time.sleep(0.02)
        for link in links:
            link.connection.close()
        for link in links:
            if link.thread is not None:
                link.thread.join(timeout=5.0)
        self._accept_thread.join(timeout=5.0)
        self._monitor_thread.join(timeout=5.0)
        self._dispatch_thread.join(timeout=5.0)
        if self._owns_session:
            self.session.close()
