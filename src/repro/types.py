"""Common enumerations and small value types shared across the library.

The SpikeStream paper evaluates three numeric precisions (FP8, FP16 and the
FP64-capable baseline datapath).  :class:`Precision` captures the properties
that matter for the performance and energy models: the width of a single
element, the resulting SIMD width on Snitch's 64-bit FPU lanes, and a relative
FPU energy scale used by :mod:`repro.energy`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Precision(enum.Enum):
    """Floating-point element precision used by a kernel.

    Snitch's FPU operates on 64-bit registers and packs narrower elements into
    SIMD lanes: one FP64 element, two FP32, four FP16 or eight FP8 elements
    per register.
    """

    FP64 = "fp64"
    FP32 = "fp32"
    FP16 = "fp16"
    FP8 = "fp8"

    @property
    def bits(self) -> int:
        """Number of bits of a single element."""
        return {
            Precision.FP64: 64,
            Precision.FP32: 32,
            Precision.FP16: 16,
            Precision.FP8: 8,
        }[self]

    @property
    def bytes(self) -> int:
        """Number of bytes of a single element."""
        return self.bits // 8

    @property
    def simd_width(self) -> int:
        """Number of elements packed into one 64-bit FPU register."""
        return 64 // self.bits

    @property
    def fpu_energy_scale(self) -> float:
        """Relative per-operation FPU energy w.r.t. FP64.

        Narrow formats use dedicated execution slices that are clock-gated
        when idle (Section IV-B of the paper), so per-register-operation
        energy shrinks slightly with precision even though more elements are
        processed per operation.
        """
        return {
            Precision.FP64: 1.0,
            Precision.FP32: 0.72,
            Precision.FP16: 0.55,
            Precision.FP8: 0.44,
        }[self]

    @classmethod
    def from_name(cls, name: str) -> "Precision":
        """Parse a precision from strings like ``"fp16"`` or ``"FP16"``."""
        try:
            return cls(name.lower())
        except ValueError as exc:
            valid = ", ".join(p.value for p in cls)
            raise ValueError(f"unknown precision {name!r}; expected one of {valid}") from exc


class LayerKind(enum.Enum):
    """Kind of a network layer, used to pick the execution strategy."""

    CONV = "conv"
    LINEAR = "linear"
    MAXPOOL = "maxpool"
    AVGPOOL = "avgpool"
    FLATTEN = "flatten"


class StreamKind(enum.Enum):
    """Addressing mode of a Snitch stream register."""

    AFFINE = "affine"
    INDIRECT = "indirect"


class OptimizationFlag(enum.Flag):
    """Individual SpikeStream optimizations (Section III of the paper)."""

    NONE = 0
    TENSOR_COMPRESSION = enum.auto()
    TASK_PARALLELIZATION = enum.auto()
    DATA_PARALLELIZATION = enum.auto()
    DOUBLE_BUFFERING = enum.auto()
    STREAMING_ACCELERATION = enum.auto()

    @classmethod
    def baseline(cls) -> "OptimizationFlag":
        """Flags used by the paper's parallel SIMD baseline (TC+TP+DP+DB)."""
        return (
            cls.TENSOR_COMPRESSION
            | cls.TASK_PARALLELIZATION
            | cls.DATA_PARALLELIZATION
            | cls.DOUBLE_BUFFERING
        )

    @classmethod
    def spikestream(cls) -> "OptimizationFlag":
        """Flags used by the full SpikeStream kernel (baseline + SA)."""
        return cls.baseline() | cls.STREAMING_ACCELERATION


@dataclass(frozen=True)
class TensorShape:
    """Shape of a (possibly spatial) activation tensor in HWC order."""

    height: int
    width: int
    channels: int

    def __post_init__(self) -> None:
        for name in ("height", "width", "channels"):
            value = getattr(self, name)
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")

    @property
    def spatial_size(self) -> int:
        """Number of spatial positions (H*W)."""
        return self.height * self.width

    @property
    def numel(self) -> int:
        """Total number of elements."""
        return self.height * self.width * self.channels

    def as_tuple(self) -> tuple:
        """Return ``(height, width, channels)``."""
        return (self.height, self.width, self.channels)

    def __str__(self) -> str:
        return f"{self.height}x{self.width}x{self.channels}"


INDEX_BYTES_DEFAULT = 2
"""Default index width in bytes (the paper assumes 16-bit indices)."""
