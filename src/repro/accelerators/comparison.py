"""Layer-6 / 500-timestep comparison against the SoA neuromorphic processors.

This module regenerates Figure 5: the latency (against peak GSOP) and energy
(against technology node) of Loihi, ODIN, LSMCore, NeuroRVcore and the three
Snitch-cluster variants (baseline FP16, SpikeStream FP16, SpikeStream FP8) on
the sixth convolutional layer of S-VGG11 executed for 500 timesteps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..config import RunConfig, baseline_config, spikestream_config
from ..snn.svgg11 import SVGG11_LAYER_FIRING_RATES, svgg11_layer_shapes
from ..types import Precision
from .base import AcceleratorModel, synaptic_operations
from .loihi import LOIHI
from .lsmcore import LSMCORE
from .neurorvcore import NEURORVCORE
from .odin import ODIN

#: Peak GSOP of the Snitch cluster at FP8 (8 cores x 8 lanes x 1 GHz); the
#: paper notes its peak SOP rate is 6.25x lower than LSMCore's.
SNITCH_PEAK_GSOP_FP8 = 64.0

COMPARISON_LAYER = "conv6"
COMPARISON_TIMESTEPS = 500


def soa_accelerators() -> List[AcceleratorModel]:
    """The four state-of-the-art accelerators of the comparison."""
    return [LOIHI, ODIN, LSMCORE, NEURORVCORE]


@dataclass(frozen=True)
class ComparisonEntry:
    """One system's point in the Figure 5 comparison."""

    name: str
    latency_ms: float
    energy_mj: float
    peak_gsop: float
    technology_nm: float
    precision_bits: int

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary (one table row)."""
        return {
            "system": self.name,
            "latency_ms": self.latency_ms,
            "energy_mj": self.energy_mj,
            "peak_gsop": self.peak_gsop,
            "technology_nm": self.technology_nm,
            "precision_bits": self.precision_bits,
        }


def _layer6_description() -> dict:
    for description in svgg11_layer_shapes():
        if description["name"] == COMPARISON_LAYER:
            return description
    raise RuntimeError(f"{COMPARISON_LAYER} not found in the S-VGG11 description")


def layer6_synaptic_operations(timesteps: int = COMPARISON_TIMESTEPS,
                               firing_rate: Optional[float] = None) -> float:
    """Synaptic operations of the comparison workload."""
    description = _layer6_description()
    rate = firing_rate if firing_rate is not None else SVGG11_LAYER_FIRING_RATES[COMPARISON_LAYER]
    return synaptic_operations(
        output_shape=description["output_shape"],
        kernel_size=description["kernel_size"],
        in_channels=description["in_channels"],
        firing_rate=rate,
        timesteps=timesteps,
    )


def _snitch_entries(
    timesteps: int,
    batch_size: int,
    seed: int,
    configs: Optional[Sequence[RunConfig]] = None,
) -> List[ComparisonEntry]:
    """Run the cluster variants on the comparison workload."""
    from ..core.pipeline import SpikeStreamInference

    if configs is None:
        configs = [
            baseline_config(Precision.FP16, batch_size=batch_size, timesteps=timesteps, seed=seed),
            spikestream_config(Precision.FP16, batch_size=batch_size, timesteps=timesteps, seed=seed),
            spikestream_config(Precision.FP8, batch_size=batch_size, timesteps=timesteps, seed=seed),
        ]
    entries = []
    for config in configs:
        engine = SpikeStreamInference(config)
        plans = [p for p in engine.optimizer.plan_svgg11() if p.name == COMPARISON_LAYER]
        result = engine.run_statistical(plans=plans, batch_size=config.batch_size)
        layer = result.layer(COMPARISON_LAYER)
        variant = "SpikeStream" if config.streaming_enabled else "Baseline"
        peak_gsop = SNITCH_PEAK_GSOP_FP8 * config.precision.simd_width / Precision.FP8.simd_width
        entries.append(
            ComparisonEntry(
                name=f"{variant} {config.precision.value.upper()}",
                latency_ms=layer.mean_runtime_s * 1e3,
                energy_mj=layer.mean_energy_j * 1e3,
                peak_gsop=peak_gsop,
                technology_nm=12,
                precision_bits=config.precision.bits,
            )
        )
    return entries


def compare_accelerators(
    timesteps: int = COMPARISON_TIMESTEPS,
    batch_size: int = 8,
    seed: int = 2025,
    firing_rate: Optional[float] = None,
    include_snitch: bool = True,
) -> List[ComparisonEntry]:
    """Build the full Figure 5 comparison table.

    ``batch_size`` controls how many synthetic frames the cluster variants
    average over (the accelerator models are deterministic).
    """
    ops = layer6_synaptic_operations(timesteps=timesteps, firing_rate=firing_rate)
    entries = [
        ComparisonEntry(
            name=model.name,
            latency_ms=model.latency_s(ops) * 1e3,
            energy_mj=model.energy_j(ops) * 1e3,
            peak_gsop=model.peak_gsop,
            technology_nm=model.technology_nm,
            precision_bits=model.precision_bits,
        )
        for model in soa_accelerators()
    ]
    if include_snitch:
        entries.extend(_snitch_entries(timesteps, batch_size, seed))
    return entries
