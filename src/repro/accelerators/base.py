"""Analytical accelerator model and synaptic-operation accounting."""

from __future__ import annotations

from dataclasses import dataclass

from ..types import TensorShape


@dataclass(frozen=True)
class AcceleratorModel:
    """A neuromorphic accelerator described by its headline figures.

    Attributes
    ----------
    name:
        Accelerator name.
    peak_gsop:
        Peak synaptic operations per second, in GSOP/s.
    precision_bits:
        Weight arithmetic precision in bits.
    technology_nm:
        Silicon technology node.
    energy_per_sop_pj:
        Effective energy per synaptic operation on this workload, in pJ
        (includes memory traffic and control; calibrated to the published
        per-inference energies rather than the marketing pJ/SOP figure).
    efficiency:
        Fraction of the peak SOP rate sustained on the sparse S-VGG11 layer
        (captures load imbalance, input sparsity handling and I/O overheads).
    """

    name: str
    peak_gsop: float
    precision_bits: int
    technology_nm: float
    energy_per_sop_pj: float
    efficiency: float = 1.0

    def __post_init__(self) -> None:
        if self.peak_gsop <= 0:
            raise ValueError("peak_gsop must be positive")
        if not 0.0 < self.efficiency <= 1.0:
            raise ValueError("efficiency must be in (0, 1]")
        if self.energy_per_sop_pj <= 0:
            raise ValueError("energy_per_sop_pj must be positive")

    @property
    def sustained_sop_per_s(self) -> float:
        """Sustained synaptic operations per second on the modeled workload."""
        return self.peak_gsop * 1.0e9 * self.efficiency

    def latency_s(self, synaptic_ops: float) -> float:
        """Runtime for a workload of ``synaptic_ops`` synaptic operations."""
        if synaptic_ops < 0:
            raise ValueError("synaptic_ops must be non-negative")
        return synaptic_ops / self.sustained_sop_per_s

    def energy_j(self, synaptic_ops: float) -> float:
        """Energy for a workload of ``synaptic_ops`` synaptic operations."""
        if synaptic_ops < 0:
            raise ValueError("synaptic_ops must be non-negative")
        return synaptic_ops * self.energy_per_sop_pj * 1.0e-12


def synaptic_operations(
    output_shape: TensorShape,
    kernel_size: int,
    in_channels: int,
    firing_rate: float,
    timesteps: int = 1,
) -> float:
    """Synaptic operations of one convolutional SNN layer.

    Every input spike inside a receptive field fans out to all output
    channels of that position, so the SOP count is::

        out_h * out_w * kh * kw * C_in * firing_rate * C_out * timesteps
    """
    if not 0.0 <= firing_rate <= 1.0:
        raise ValueError("firing_rate must be in [0, 1]")
    if timesteps <= 0:
        raise ValueError("timesteps must be positive")
    gathers = (
        output_shape.spatial_size * kernel_size * kernel_size * in_channels * firing_rate
    )
    return gathers * output_shape.channels * timesteps
