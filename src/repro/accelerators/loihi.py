"""Intel Loihi accelerator model.

Loihi is a GALS many-core neuromorphic processor with 128 cores of 1024
spiking neurons each, implemented in a 14 nm node with a peak rate of
37.5 GSOP/s and 1-64 bit synaptic precision.  The effective per-SOP energy is
calibrated to the per-inference energy reported for the S-VGG11 layer-6
workload in the comparison of Yang et al. [17].
"""

from .base import AcceleratorModel

LOIHI = AcceleratorModel(
    name="Loihi",
    peak_gsop=37.5,
    precision_bits=8,
    technology_nm=14,
    energy_per_sop_pj=60.0,
    efficiency=0.39,
)
