"""NeuroRVcore accelerator model.

NeuroRVcore extends the RISC-V ri5cy core with a tightly-coupled neuromorphic
accelerator (neuron array, adder trees, vector load/store unit) at a 149 %
area overhead, fixed 4-bit weights, 1 GHz in 28 nm and a peak rate of
128 GSOP/s.
"""

from .base import AcceleratorModel

NEURORVCORE = AcceleratorModel(
    name="NeuroRVcore",
    peak_gsop=128.0,
    precision_bits=4,
    technology_nm=28,
    energy_per_sop_pj=45.0,
    efficiency=0.40,
)
