"""LSMCore accelerator model.

LSMCore is a digital fully-synchronous liquid-state-machine processor with
1024 LIF neurons, bitmap ifmap storage with weight zero-skipping, 4-bit
weights and a 400 MHz clock in 40 nm, reaching a peak of 400 GSOP/s.  It is
the fastest and most energy-efficient of the compared neuromorphic
processors.
"""

from .base import AcceleratorModel

LSMCORE = AcceleratorModel(
    name="LSMCore",
    peak_gsop=400.0,
    precision_bits=4,
    technology_nm=40,
    energy_per_sop_pj=30.0,
    efficiency=0.41,
)
