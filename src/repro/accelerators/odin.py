"""ODIN accelerator model.

ODIN is a 0.086 mm² online-learning digital neuromorphic processor in 28 nm
with 256 Izhikevich neurons, 64k synapses and a 75 MHz clock; its peak rate of
0.038 GSOP/s makes it by far the slowest system in the comparison.
"""

from .base import AcceleratorModel

ODIN = AcceleratorModel(
    name="ODIN",
    peak_gsop=0.038,
    precision_bits=4,
    technology_nm=28,
    energy_per_sop_pj=50.0,
    efficiency=0.40,
)
