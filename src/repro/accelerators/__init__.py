"""Analytical models of the neuromorphic accelerators compared in Section IV-C.

The paper compares SpikeStream against four state-of-the-art neuromorphic
processors (Loihi, ODIN, LSMCore and NeuroRVcore) on the sixth layer of
S-VGG11 over 500 timesteps, using the latency/energy numbers reported by
Yang et al. [17].  Since those are literature values rather than something a
software artifact can re-measure, each accelerator is modeled analytically
from its peak synaptic-operation rate, arithmetic precision, technology node
and effective energy per synaptic operation, calibrated to land on the same
latency/energy points.
"""

from .base import AcceleratorModel, synaptic_operations
from .loihi import LOIHI
from .odin import ODIN
from .lsmcore import LSMCORE
from .neurorvcore import NEURORVCORE
from .comparison import ComparisonEntry, compare_accelerators, soa_accelerators

__all__ = [
    "AcceleratorModel",
    "synaptic_operations",
    "LOIHI",
    "ODIN",
    "LSMCORE",
    "NEURORVCORE",
    "ComparisonEntry",
    "compare_accelerators",
    "soa_accelerators",
]
