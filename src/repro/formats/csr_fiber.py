"""CSR-derived fiber-tree compression of binary ifmaps (Section III-A).

Because all non-zero elements of a spike map are ``1``, only their positions
need to be stored.  In convolutional layers SpikeStream keeps, per spatial
position (row-major over H then W):

* ``c_idcs`` — the channel indices of active neurons, concatenated over all
  spatial positions, and
* ``s_ptr``  — a pointer array of length ``H*W + 1`` whose consecutive
  differences give the number of spiking neurons at each spatial position
  (a prefix-sum, exactly like CSR row pointers).

Fully connected layers use a single index array plus a spike count
(:class:`CompressedVector`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..types import INDEX_BYTES_DEFAULT, TensorShape

_INDEX_DTYPES = {1: np.uint8, 2: np.uint16, 4: np.uint32}


def index_dtype(index_bytes: int) -> np.dtype:
    """Return the NumPy dtype used for compressed indices of a given width."""
    try:
        return np.dtype(_INDEX_DTYPES[index_bytes])
    except KeyError as exc:
        raise ValueError(f"index_bytes must be one of {sorted(_INDEX_DTYPES)}, got {index_bytes}") from exc


@dataclass
class CompressedIfmap:
    """Fiber-tree compressed spike map for convolutional layers.

    Attributes
    ----------
    shape:
        Logical dense shape of the ifmap (H, W, C).
    c_idcs:
        Channel indices of active neurons, ordered by spatial position
        (row-major) and ascending channel within a position.
    s_ptr:
        Spatial pointer array of length ``H*W + 1``; ``s_ptr[p+1] - s_ptr[p]``
        is the number of spikes at flattened spatial position ``p``.
    index_bytes:
        Byte width of one stored index (16-bit in the paper).
    """

    shape: TensorShape
    c_idcs: np.ndarray
    s_ptr: np.ndarray
    index_bytes: int = INDEX_BYTES_DEFAULT

    def __post_init__(self) -> None:
        dtype = index_dtype(self.index_bytes)
        self.c_idcs = np.ascontiguousarray(np.asarray(self.c_idcs, dtype=dtype))
        self.s_ptr = np.ascontiguousarray(np.asarray(self.s_ptr, dtype=np.int64))
        expected_ptr_len = self.shape.spatial_size + 1
        if self.s_ptr.shape != (expected_ptr_len,):
            raise ValueError(
                f"s_ptr must have length {expected_ptr_len}, got {self.s_ptr.shape}"
            )
        if self.s_ptr[0] != 0:
            raise ValueError("s_ptr must start at 0")
        if np.any(np.diff(self.s_ptr) < 0):
            raise ValueError("s_ptr must be non-decreasing")
        if self.s_ptr[-1] != len(self.c_idcs):
            raise ValueError(
                f"s_ptr[-1] ({self.s_ptr[-1]}) must equal len(c_idcs) ({len(self.c_idcs)})"
            )
        if len(self.c_idcs) and int(self.c_idcs.max()) >= self.shape.channels:
            raise ValueError("c_idcs contains a channel index out of range")

    @property
    def nnz(self) -> int:
        """Total number of spikes stored."""
        return int(self.s_ptr[-1])

    @property
    def firing_rate(self) -> float:
        """Fraction of active neurons."""
        numel = self.shape.numel
        return self.nnz / numel if numel else 0.0

    def spatial_slice(self, row: int, col: int) -> np.ndarray:
        """Return the channel indices of spikes at spatial position (row, col)."""
        if not (0 <= row < self.shape.height and 0 <= col < self.shape.width):
            raise IndexError(f"spatial position ({row}, {col}) out of bounds for {self.shape}")
        pos = row * self.shape.width + col
        start, stop = int(self.s_ptr[pos]), int(self.s_ptr[pos + 1])
        return self.c_idcs[start:stop]

    def spike_count_at(self, row: int, col: int) -> int:
        """Number of spikes at spatial position (row, col)."""
        return len(self.spatial_slice(row, col))

    def spike_counts(self) -> np.ndarray:
        """Per-spatial-position spike counts as an (H, W) array."""
        counts = np.diff(self.s_ptr)
        return counts.reshape(self.shape.height, self.shape.width)

    def footprint_bytes(self) -> int:
        """Bytes needed to store the compressed representation."""
        return len(self.c_idcs) * self.index_bytes + len(self.s_ptr) * self.index_bytes


@dataclass
class CompressedVector:
    """Compressed spike vector for fully connected layers.

    A single index array records the positions of spiking input neurons; the
    spike count is implicit in the array length but stored explicitly so that
    the kernel can set up the stream bound with a single load.
    """

    length: int
    idcs: np.ndarray
    index_bytes: int = INDEX_BYTES_DEFAULT

    def __post_init__(self) -> None:
        if self.length < 0:
            raise ValueError(f"length must be non-negative, got {self.length}")
        dtype = index_dtype(self.index_bytes)
        self.idcs = np.ascontiguousarray(np.asarray(self.idcs, dtype=dtype))
        if len(self.idcs) and int(self.idcs.max()) >= self.length:
            raise ValueError("idcs contains an index out of range")
        if len(np.unique(self.idcs)) != len(self.idcs):
            raise ValueError("idcs must not contain duplicates")

    @property
    def nnz(self) -> int:
        """Number of spiking input neurons."""
        return int(len(self.idcs))

    @property
    def firing_rate(self) -> float:
        """Fraction of active input neurons."""
        return self.nnz / self.length if self.length else 0.0

    def footprint_bytes(self) -> int:
        """Bytes needed to store indices plus the explicit spike count."""
        return self.nnz * self.index_bytes + self.index_bytes


@dataclass
class CompressedIfmapBuilder:
    """Incremental builder used by kernels when emitting compressed ofmaps.

    Worker cores append spikes position-by-position; :meth:`finalize` yields a
    validated :class:`CompressedIfmap`.  The builder mirrors the SPM buffers
    allocated for the worst case (zero sparsity) described in Section III-D.
    """

    shape: TensorShape
    index_bytes: int = INDEX_BYTES_DEFAULT
    _counts: np.ndarray = field(init=False)
    _indices: list = field(init=False, default_factory=list)

    def __post_init__(self) -> None:
        self._counts = np.zeros(self.shape.spatial_size, dtype=np.int64)
        self._indices = [[] for _ in range(self.shape.spatial_size)]

    def add_spike(self, row: int, col: int, channel: int) -> None:
        """Record a spike of output channel ``channel`` at position (row, col)."""
        if not (0 <= channel < self.shape.channels):
            raise ValueError(f"channel {channel} out of range for {self.shape}")
        pos = row * self.shape.width + col
        self._indices[pos].append(channel)
        self._counts[pos] += 1

    def worst_case_bytes(self) -> int:
        """SPM bytes reserved assuming a fully dense (zero-sparsity) output."""
        return (self.shape.numel + self.shape.spatial_size + 1) * self.index_bytes

    def finalize(self) -> CompressedIfmap:
        """Return the compressed ofmap accumulated so far."""
        s_ptr = np.zeros(self.shape.spatial_size + 1, dtype=np.int64)
        np.cumsum(self._counts, out=s_ptr[1:])
        flat = [channel for position in self._indices for channel in sorted(position)]
        c_idcs = np.asarray(flat, dtype=index_dtype(self.index_bytes))
        return CompressedIfmap(
            shape=self.shape, c_idcs=c_idcs, s_ptr=s_ptr, index_bytes=self.index_bytes
        )
