"""Sparse spike-tensor representations.

The paper compares three ways of representing the binary input feature maps
(ifmaps) of an SNN:

* the dense HWC layout (:mod:`repro.formats.dense`),
* the address-event representation (AER) used by neuromorphic processors
  (:mod:`repro.formats.aer`),
* the CSR-derived fiber-tree compression proposed by SpikeStream
  (:mod:`repro.formats.csr_fiber`), and additionally
* the bitmap representation used by LSMCore (:mod:`repro.formats.bitmap`).

:mod:`repro.formats.convert` provides lossless conversions between all of
them and :mod:`repro.formats.footprint` the memory-footprint model behind
Figure 3a.
"""

from .aer import AEREvent, AERStream
from .bitmap import BitmapIfmap
from .csr_fiber import CompressedIfmap, CompressedVector
from .convert import (
    aer_to_dense,
    bitmap_to_dense,
    compress_ifmap,
    compress_vector,
    dense_to_aer,
    dense_to_bitmap,
    decompress_ifmap,
    decompress_vector,
)
from .footprint import (
    aer_footprint_bytes,
    bitmap_footprint_bytes,
    csr_footprint_bytes,
    dense_footprint_bytes,
    footprint_report,
)

__all__ = [
    "AEREvent",
    "AERStream",
    "BitmapIfmap",
    "CompressedIfmap",
    "CompressedVector",
    "aer_to_dense",
    "bitmap_to_dense",
    "compress_ifmap",
    "compress_vector",
    "dense_to_aer",
    "dense_to_bitmap",
    "decompress_ifmap",
    "decompress_vector",
    "aer_footprint_bytes",
    "bitmap_footprint_bytes",
    "csr_footprint_bytes",
    "dense_footprint_bytes",
    "footprint_report",
]
