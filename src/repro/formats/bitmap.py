"""Bitmap spike representation as used by LSMCore.

LSMCore stores the dynamic sparsity of ifmaps in a bitmap (one bit per
neuron) and performs zero-skipping on the weights.  The format is included as
a comparison point for footprint studies and for the LSMCore accelerator
model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..types import TensorShape


@dataclass
class BitmapIfmap:
    """One-bit-per-neuron representation of a spike map."""

    shape: TensorShape
    bits: np.ndarray

    def __post_init__(self) -> None:
        self.bits = np.asarray(self.bits, dtype=bool)
        expected = self.shape.as_tuple()
        if self.bits.shape != expected:
            raise ValueError(f"bits has shape {self.bits.shape}, expected {expected}")

    @property
    def nnz(self) -> int:
        """Number of set bits (spikes)."""
        return int(np.count_nonzero(self.bits))

    @property
    def firing_rate(self) -> float:
        """Fraction of active neurons."""
        return self.nnz / self.shape.numel if self.shape.numel else 0.0

    def footprint_bytes(self) -> int:
        """Bytes required for the bitmap (one bit per neuron, rounded up)."""
        return (self.shape.numel + 7) // 8
