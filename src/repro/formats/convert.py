"""Lossless conversions between spike-tensor representations.

All conversions round-trip exactly (verified by property-based tests): a
dense map converted to any format and back yields the identical boolean
tensor.
"""

from __future__ import annotations

import numpy as np

from ..types import INDEX_BYTES_DEFAULT, TensorShape
from .aer import AEREvent, AERStream
from .bitmap import BitmapIfmap
from .csr_fiber import CompressedIfmap, CompressedVector, index_dtype
from .dense import as_dense_spikes, shape_of


def compress_ifmap(dense: np.ndarray, index_bytes: int = INDEX_BYTES_DEFAULT) -> CompressedIfmap:
    """Compress a dense HWC spike map into the CSR-derived fiber-tree format."""
    dense = as_dense_spikes(dense)
    shape = shape_of(dense)
    flat = dense.reshape(shape.spatial_size, shape.channels)
    counts = np.count_nonzero(flat, axis=1)
    s_ptr = np.zeros(shape.spatial_size + 1, dtype=np.int64)
    np.cumsum(counts, out=s_ptr[1:])
    positions, channels = np.nonzero(flat)
    # np.nonzero returns row-major order: grouped by spatial position with
    # ascending channel indices inside each group, which is exactly the
    # ordering the SpVA kernel expects.
    del positions
    c_idcs = channels.astype(index_dtype(index_bytes))
    return CompressedIfmap(shape=shape, c_idcs=c_idcs, s_ptr=s_ptr, index_bytes=index_bytes)


def decompress_ifmap(compressed: CompressedIfmap) -> np.ndarray:
    """Expand a compressed ifmap back into a dense boolean HWC tensor."""
    shape = compressed.shape
    dense = np.zeros((shape.spatial_size, shape.channels), dtype=bool)
    counts = np.diff(compressed.s_ptr)
    positions = np.repeat(np.arange(shape.spatial_size), counts)
    dense[positions, compressed.c_idcs.astype(np.int64)] = True
    return dense.reshape(shape.height, shape.width, shape.channels)


def compress_vector(dense: np.ndarray, index_bytes: int = INDEX_BYTES_DEFAULT) -> CompressedVector:
    """Compress a dense 1-D binary vector (FC-layer input) into index form."""
    dense = np.asarray(dense)
    if dense.ndim != 1:
        raise ValueError(f"FC spike vector must be 1-D, got shape {dense.shape}")
    if dense.dtype != np.bool_:
        unique = np.unique(dense)
        if not np.all(np.isin(unique, (0, 1))):
            raise ValueError("spike vector must contain only 0/1 values")
        dense = dense.astype(bool)
    idcs = np.nonzero(dense)[0].astype(index_dtype(index_bytes))
    return CompressedVector(length=len(dense), idcs=idcs, index_bytes=index_bytes)


def decompress_vector(compressed: CompressedVector) -> np.ndarray:
    """Expand a compressed spike vector back into dense boolean form."""
    dense = np.zeros(compressed.length, dtype=bool)
    dense[compressed.idcs.astype(np.int64)] = True
    return dense


def dense_to_aer(
    dense: np.ndarray, timestep: int = 0, index_bytes: int = INDEX_BYTES_DEFAULT
) -> AERStream:
    """Convert a dense spike map into an AER event stream for one timestep."""
    dense = as_dense_spikes(dense)
    shape = shape_of(dense)
    rows, cols, channels = np.nonzero(dense)
    events = [
        AEREvent(row=int(r), col=int(c), channel=int(ch), timestep=timestep)
        for r, c, ch in zip(rows, cols, channels)
    ]
    return AERStream(shape=shape, events=events, index_bytes=index_bytes)


def aer_to_dense(stream: AERStream) -> np.ndarray:
    """Convert an AER event stream back into a dense boolean HWC tensor."""
    shape = stream.shape
    dense = np.zeros(shape.as_tuple(), dtype=bool)
    for event in stream:
        dense[event.row, event.col, event.channel] = True
    return dense


def dense_to_bitmap(dense: np.ndarray) -> BitmapIfmap:
    """Convert a dense spike map into the LSMCore-style bitmap format."""
    dense = as_dense_spikes(dense)
    return BitmapIfmap(shape=shape_of(dense), bits=dense.copy())


def bitmap_to_dense(bitmap: BitmapIfmap) -> np.ndarray:
    """Convert a bitmap spike map back into a dense boolean tensor."""
    return bitmap.bits.copy()


def empty_compressed_ifmap(
    shape: TensorShape, index_bytes: int = INDEX_BYTES_DEFAULT
) -> CompressedIfmap:
    """Return a compressed ifmap with no spikes for the given dense shape."""
    return CompressedIfmap(
        shape=shape,
        c_idcs=np.zeros(0, dtype=index_dtype(index_bytes)),
        s_ptr=np.zeros(shape.spatial_size + 1, dtype=np.int64),
        index_bytes=index_bytes,
    )
