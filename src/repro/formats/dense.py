"""Dense HWC spike tensors.

A dense spike map is a boolean ``(H, W, C)`` array in HWC (height, width,
channel) order — the layout SpikeStream adopts for the weight tensor and the
first-layer input currents.  Helper functions validate and normalize user
arrays into this canonical form.
"""

from __future__ import annotations

import numpy as np

from ..types import TensorShape


def as_dense_spikes(array: np.ndarray) -> np.ndarray:
    """Normalize ``array`` into a canonical boolean HWC spike map.

    Accepts any array of zeros/ones (bool, int or float) with three
    dimensions interpreted as (H, W, C).
    """
    array = np.asarray(array)
    if array.ndim != 3:
        raise ValueError(f"dense spike map must be 3-D (H, W, C), got shape {array.shape}")
    if array.dtype != np.bool_:
        unique = np.unique(array)
        if not np.all(np.isin(unique, (0, 1))):
            raise ValueError("dense spike map must contain only 0/1 values")
        array = array.astype(bool)
    return array


def shape_of(dense: np.ndarray) -> TensorShape:
    """Return the :class:`TensorShape` of a dense HWC spike map."""
    dense = as_dense_spikes(dense)
    height, width, channels = dense.shape
    return TensorShape(height=height, width=width, channels=channels)


def firing_rate(dense: np.ndarray) -> float:
    """Fraction of active neurons in a dense spike map."""
    dense = as_dense_spikes(dense)
    if dense.size == 0:
        return 0.0
    return float(np.count_nonzero(dense)) / dense.size


def random_spike_map(
    shape: TensorShape, rate: float, rng: np.random.Generator
) -> np.ndarray:
    """Generate a random Bernoulli spike map with the requested firing rate."""
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"rate must be in [0, 1], got {rate}")
    return rng.random((shape.height, shape.width, shape.channels)) < rate
