"""Address-event representation (AER) of spike tensors.

Neuromorphic processors such as Loihi and ODIN exchange spikes as
address-events: each spike is transmitted as the absolute coordinates of the
firing neuron plus a timestamp.  The paper contrasts this against the
SpikeStream CSR-derived format, which processes ifmaps sequentially and
therefore needs neither timestamps nor absolute spatial coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List

import numpy as np

from ..types import INDEX_BYTES_DEFAULT, TensorShape

AER_FIELDS_PER_EVENT = 3
"""16-bit fields stored per AER event.

Neuromorphic processors transmit each spike as the firing neuron's absolute
address plus a timestamp.  Following the paper's assumption of 16-bit values,
an event is modeled as three fields: the packed spatial coordinate, the
channel index and the timestamp.  (The Python-side :class:`AEREvent` keeps
row and column separate for convenience; the footprint model counts them as
one packed field.)
"""


@dataclass(frozen=True)
class AEREvent:
    """A single address-event: neuron coordinates and the firing timestep."""

    row: int
    col: int
    channel: int
    timestep: int = 0

    def __post_init__(self) -> None:
        for name in ("row", "col", "channel", "timestep"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative, got {getattr(self, name)}")


@dataclass
class AERStream:
    """A stream of address events for a tensor of a given dense shape."""

    shape: TensorShape
    events: List[AEREvent] = field(default_factory=list)
    index_bytes: int = INDEX_BYTES_DEFAULT

    def __post_init__(self) -> None:
        for event in self.events:
            self._check_event(event)

    def _check_event(self, event: AEREvent) -> None:
        if event.row >= self.shape.height or event.col >= self.shape.width:
            raise ValueError(f"event {event} outside spatial bounds of {self.shape}")
        if event.channel >= self.shape.channels:
            raise ValueError(f"event {event} channel out of range for {self.shape}")

    def append(self, event: AEREvent) -> None:
        """Add an event to the stream after bounds checking."""
        self._check_event(event)
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[AEREvent]:
        return iter(self.events)

    @property
    def nnz(self) -> int:
        """Number of events (spikes) in the stream."""
        return len(self.events)

    def footprint_bytes(self) -> int:
        """Bytes required to store the stream.

        Each event stores absolute x/y coordinates, a channel index and a
        timestamp, each ``index_bytes`` wide (16 bits in the paper).
        """
        return self.nnz * AER_FIELDS_PER_EVENT * self.index_bytes

    def coordinates(self) -> np.ndarray:
        """Return an ``(nnz, 4)`` int array of (row, col, channel, timestep)."""
        if not self.events:
            return np.zeros((0, 4), dtype=np.int64)
        return np.asarray(
            [(e.row, e.col, e.channel, e.timestep) for e in self.events], dtype=np.int64
        )
