"""Memory-footprint model for spike-tensor formats (Figure 3a).

The paper measures the bytes needed to store the ifmaps of each S-VGG11 layer
under the AER format and the proposed CSR-derived format, assuming 16-bit
indices and coordinates, and reports an average footprint reduction of about
2.75x in favour of the CSR format.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..types import INDEX_BYTES_DEFAULT, Precision, TensorShape
from .aer import AER_FIELDS_PER_EVENT
from .convert import compress_ifmap, dense_to_aer
from .dense import as_dense_spikes, firing_rate, shape_of


def dense_footprint_bytes(shape: TensorShape, precision: Precision = Precision.FP16) -> int:
    """Bytes for an uncompressed dense activation tensor at a given precision."""
    return shape.numel * precision.bytes


def csr_footprint_bytes(
    shape: TensorShape, nnz: int, index_bytes: int = INDEX_BYTES_DEFAULT
) -> int:
    """Bytes for the CSR-derived fiber-tree format.

    ``c_idcs`` stores one index per spike and ``s_ptr`` one pointer per
    spatial position plus one.
    """
    if nnz < 0:
        raise ValueError(f"nnz must be non-negative, got {nnz}")
    if nnz > shape.numel:
        raise ValueError(f"nnz ({nnz}) cannot exceed numel ({shape.numel})")
    return nnz * index_bytes + (shape.spatial_size + 1) * index_bytes


def aer_footprint_bytes(nnz: int, index_bytes: int = INDEX_BYTES_DEFAULT) -> int:
    """Bytes for the AER format: absolute coordinates plus a timestamp per spike."""
    if nnz < 0:
        raise ValueError(f"nnz must be non-negative, got {nnz}")
    return nnz * AER_FIELDS_PER_EVENT * index_bytes


def bitmap_footprint_bytes(shape: TensorShape) -> int:
    """Bytes for the LSMCore bitmap format (one bit per neuron)."""
    return (shape.numel + 7) // 8


@dataclass(frozen=True)
class FootprintReport:
    """Footprints of one spike map under every supported format."""

    shape: TensorShape
    nnz: int
    firing_rate: float
    dense_bytes: int
    csr_bytes: int
    aer_bytes: int
    bitmap_bytes: int

    @property
    def csr_over_aer_reduction(self) -> float:
        """How many times smaller the CSR format is compared to AER."""
        if self.csr_bytes == 0:
            return float("inf") if self.aer_bytes else 1.0
        return self.aer_bytes / self.csr_bytes

    def as_dict(self) -> Dict[str, float]:
        """Return the report as a flat dictionary (for tabular output)."""
        return {
            "shape": str(self.shape),
            "nnz": self.nnz,
            "firing_rate": self.firing_rate,
            "dense_bytes": self.dense_bytes,
            "csr_bytes": self.csr_bytes,
            "aer_bytes": self.aer_bytes,
            "bitmap_bytes": self.bitmap_bytes,
            "csr_over_aer_reduction": self.csr_over_aer_reduction,
        }


def footprint_report(
    dense: Optional[np.ndarray] = None,
    *,
    shape: Optional[TensorShape] = None,
    nnz: Optional[int] = None,
    index_bytes: int = INDEX_BYTES_DEFAULT,
    precision: Precision = Precision.FP16,
) -> FootprintReport:
    """Build a :class:`FootprintReport` either from a dense map or from (shape, nnz).

    Passing an actual dense map verifies the analytic formulas against the
    concrete representations; passing ``shape``/``nnz`` uses the closed-form
    model (useful for sweeps that never materialize tensors).
    """
    if dense is not None:
        dense = as_dense_spikes(dense)
        shape = shape_of(dense)
        compressed = compress_ifmap(dense, index_bytes=index_bytes)
        aer = dense_to_aer(dense, index_bytes=index_bytes)
        nnz = compressed.nnz
        csr_bytes = compressed.footprint_bytes()
        aer_bytes = aer.footprint_bytes()
        rate = firing_rate(dense)
    else:
        if shape is None or nnz is None:
            raise ValueError("either a dense map or both shape and nnz must be provided")
        csr_bytes = csr_footprint_bytes(shape, nnz, index_bytes=index_bytes)
        aer_bytes = aer_footprint_bytes(nnz, index_bytes=index_bytes)
        rate = nnz / shape.numel if shape.numel else 0.0
    return FootprintReport(
        shape=shape,
        nnz=int(nnz),
        firing_rate=float(rate),
        dense_bytes=dense_footprint_bytes(shape, precision=precision),
        csr_bytes=int(csr_bytes),
        aer_bytes=int(aer_bytes),
        bitmap_bytes=bitmap_footprint_bytes(shape),
    )
