"""Unified long-lived `Session` front-end over the whole evaluation surface.

Before this module existed the library exposed three parallel APIs: the
seven per-figure drivers in :mod:`repro.eval.experiments`, the five
:data:`~repro.eval.runner.SWEEPS` definitions behind
:func:`~repro.eval.runner.run_sweep`, and raw
:class:`~repro.core.pipeline.SpikeStreamInference` engines.  Each sweep call
spun up (and tore down) its own worker pool, and nothing memoized whole
inference runs — regenerating Figures 3b, 3c and 4 re-simulated the same
three S-VGG11 variants three times.

A :class:`Session` is the single declarative entry point that fixes both:

* **one shared pool** — the session lazily creates ONE
  :mod:`concurrent.futures` executor the first time parallel work is
  dispatched and reuses it for every subsequent sweep and experiment until
  :meth:`Session.close` (worker start-up, which dominates short sweeps, is
  paid once per service lifetime, not once per call);
* **a persistent result store** — :class:`ResultStore` memoizes whole
  :class:`~repro.core.results.InferenceResult` objects keyed on a canonical
  fingerprint of the :class:`~repro.config.RunConfig` plus the run
  parameters and hardware models, optionally persisted as JSON under
  ``cache_dir`` so results survive the process;
* **one scenario registry** — every figure experiment and every sweep is a
  named :class:`Scenario`; :meth:`Session.scenarios` lists them,
  :meth:`Session.describe` documents one, and :meth:`Session.run` executes
  it with the session's pool and caches.

Typical use::

    from repro import Session

    with Session(jobs=4, backend="process", cache_dir="results") as session:
        print(session.scenarios())
        fig3c = session.run("speedup", batch_size=128)      # simulates
        fig4 = session.run("energy", batch_size=128)        # store hits
        sweep = session.run("firing_rate", rates=(0.1, 0.3))

The module-level experiment functions and ``run_sweep`` remain available as
thin wrappers over a default session, so existing scripts keep working.
"""

from __future__ import annotations

import copy
import hashlib
import json
import re
import sys
import threading
from collections import OrderedDict
from concurrent.futures import BrokenExecutor, Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from .arch.params import ClusterParams, CostModelParams, DEFAULT_CLUSTER, DEFAULT_COSTS
from .backends import ExecutionBackend, ExecutorBackend, SerialBackend, make_backend
from .config import RunConfig, spikestream_config
from .core.pipeline import SpikeStreamInference
from .core.results import InferenceResult
from .energy.params import DEFAULT_ENERGY, EnergyParams
from .eval.experiments import (
    ExperimentResult,
    _accelerator_comparison_impl,
    _energy_impl,
    _memory_footprint_impl,
    _speedup_impl,
    _spva_microbenchmark_impl,
    _utilization_impl,
    svgg11_variant_configs,
)
from .eval.metrics import ratio
from .eval.runner import ResultsCache, SWEEPS, _execute, get_sweep, run_sweep
from .eval.runner import register_sweep as _register_sweep_spec
from .plan import PlanRow, SweepSpec, collect_plan, iter_plan
from .snn.numerics import NumericsPolicy, resolve as resolve_numerics
from .utils.serialization import atomic_write_text, canonical_json

_BACKENDS = ("process", "thread", "serial", "sharded", "net")

_SIZE_SUFFIXES = {"b": 1, "kb": 1024, "mb": 1024**2, "gb": 1024**3}


def _parse_size(text: str, original: object) -> int:
    match = re.fullmatch(r"([0-9]+(?:\.[0-9]+)?)\s*(b|kb|mb|gb)", text)
    if not match:
        raise ValueError(
            f"unrecognized cache_limit {original!r}; expected an entry count, "
            "a size such as '64MB', or a disk bound such as 'disk:256MB' "
            "(clauses may be comma-combined)"
        )
    return int(float(match.group(1)) * _SIZE_SUFFIXES[match.group(2)])


def _parse_cache_limit(
    limit: Union[None, int, str]
) -> Tuple[Optional[int], Optional[int], Optional[int]]:
    """``cache_limit`` knob -> (max_entries, max_bytes, max_disk_bytes).

    An integer (or bare digit string) bounds the in-memory entry count; a
    string with a size suffix (``"64MB"``, ``"512kb"``, ``"2gb"``) bounds
    the in-memory canonical-JSON footprint; a ``disk:`` clause
    (``"disk:256MB"``) bounds the *persisted* store directory, pruning the
    oldest files by mtime.  Clauses compose with commas:
    ``"100,disk:256MB"`` caps both.
    """
    if limit is None:
        return None, None, None
    if isinstance(limit, int):
        return limit, None, None
    max_entries: Optional[int] = None
    max_bytes: Optional[int] = None
    max_disk_bytes: Optional[int] = None
    for clause in str(limit).split(","):
        text = clause.strip().lower()
        if not text:
            continue
        if text.isdigit():
            max_entries = int(text)
        elif text.startswith("disk:") or text.startswith("disk="):
            max_disk_bytes = _parse_size(text[5:].strip(), limit)
        else:
            max_bytes = _parse_size(text, limit)
    return max_entries, max_bytes, max_disk_bytes


# --------------------------------------------------------------------------- #
# Persistent InferenceResult store
# --------------------------------------------------------------------------- #
class ResultStore:
    """Memoized whole :class:`~repro.core.results.InferenceResult` objects.

    Results are keyed on the canonical fingerprint produced by
    :meth:`Session.fingerprint` (configuration + run parameters + hardware
    models).  The store is an in-memory dictionary, optionally backed by a
    directory of one JSON file per fingerprint: :meth:`put` persists through
    an atomic write, :meth:`get` falls back to disk on an in-memory miss, so
    a new session pointed at the same ``cache_dir`` serves previous
    sessions' results without re-simulating.

    Long-lived service deployments can bound the in-memory working set with
    ``max_entries`` and/or ``max_bytes`` (canonical-JSON size of the stored
    results): the store then evicts least-recently-used entries on admission
    (`evictions` counts them).  Eviction drops only the in-memory copy —
    persisted files stay on disk and are transparently re-loaded on the next
    :meth:`get`, so bounding memory never loses results, it only trades a
    re-read (or, for memory-only stores, a re-simulation) for footprint.

    ``max_disk_bytes`` bounds the *persisted* side (``cache_dir`` grows one
    JSON file per distinct run and is otherwise unbounded): after every
    persisting :meth:`put` the oldest files by mtime are pruned until the
    directory fits, never touching the file just written
    (``disk_evictions`` counts removals).  A pruned result is simply a
    future store miss — it re-simulates; nothing breaks.
    """

    def __init__(
        self,
        cache_dir: Optional[Union[str, Path]] = None,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
        max_disk_bytes: Optional[int] = None,
    ):
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        if max_disk_bytes is not None and max_disk_bytes < 1:
            raise ValueError(f"max_disk_bytes must be positive, got {max_disk_bytes}")
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.max_disk_bytes = max_disk_bytes
        self._memory: "OrderedDict[str, InferenceResult]" = OrderedDict()
        self._sizes: Dict[str, int] = {}
        # One store is shared by every server worker thread in repro.serve;
        # the reentrant lock makes get/put/merge atomic without changing
        # single-threaded behavior.
        self._lock = threading.RLock()
        self.total_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.disk_evictions = 0
        if self.cache_dir is not None and self.max_disk_bytes is not None:
            # Pointing a bounded store at an oversized directory prunes it
            # immediately, so the bound holds from the first session on.
            self._prune_disk()

    def _path(self, fingerprint: str) -> Path:
        return self.cache_dir / f"{fingerprint}.json"

    @property
    def bounded(self) -> bool:
        return self.max_entries is not None or self.max_bytes is not None

    def _admit(self, fingerprint: str, result: InferenceResult,
               encoded_size: Optional[int] = None) -> None:
        """Insert into the LRU map and evict down to the configured bounds."""
        if fingerprint in self._memory:
            self.total_bytes -= self._sizes.pop(fingerprint, 0)
            del self._memory[fingerprint]
        self._memory[fingerprint] = result
        if self.bounded:
            if encoded_size is None:
                encoded_size = len(canonical_json(result.to_dict()).encode())
            self._sizes[fingerprint] = encoded_size
            self.total_bytes += encoded_size
            self._evict()

    def _evict(self) -> None:
        while self._memory and (
            (self.max_entries is not None and len(self._memory) > self.max_entries)
            or (self.max_bytes is not None and self.total_bytes > self.max_bytes)
        ):
            victim, _ = self._memory.popitem(last=False)
            self.total_bytes -= self._sizes.pop(victim, 0)
            self.evictions += 1

    def get(self, fingerprint: str) -> Optional[InferenceResult]:
        """Stored result for ``fingerprint`` or None (counts hits/misses).

        Hits return a deep copy, so a caller mutating a served result (e.g.
        editing its per-frame arrays in place) can never poison what later
        callers are served.
        """
        with self._lock:
            result = self._memory.get(fingerprint)
            if result is not None:
                self._memory.move_to_end(fingerprint)
                self.hits += 1
        if result is not None:
            # The deep copy happens OUTSIDE the lock: stored results are
            # immutable (only ever replaced wholesale), so copying an
            # unlocked reference is safe, and a multi-MB copy must not
            # stall every other admission/lookup thread.
            return copy.deepcopy(result)
        if self.cache_dir is not None:
            # Disk fallback also outside the lock — one slow read must not
            # serialize the serving hot path.
            path = self._path(fingerprint)
            if path.exists():
                try:
                    text = path.read_text()
                    result = InferenceResult.from_dict(json.loads(text))
                except (KeyError, TypeError, ValueError, OSError) as error:
                    # A store is disposable: unreadable entries
                    # re-simulate, they never crash the run.
                    print(
                        f"warning: ignoring unreadable stored result {path}: {error}",
                        file=sys.stderr,
                    )
                    result = None
                else:
                    with self._lock:
                        self._admit(fingerprint, result, encoded_size=len(text.encode()))
                        self.hits += 1
                    return copy.deepcopy(result)
        with self._lock:
            self.misses += 1
        return None

    def put(self, fingerprint: str, result: InferenceResult,
            adopt: bool = False) -> None:
        """Store one result, persisting it when the store is disk-backed.

        The store keeps its own deep copy: the caller usually receives the
        very object that was just simulated, and mutating it must not
        rewrite the store's master copy.  ``adopt=True`` transfers
        ownership instead — the store keeps ``result`` itself and the
        caller must treat it as frozen.  The wire-decode paths use it: a
        freshly deserialized result is already a private copy (its arrays
        arrive read-only), so the defensive deep copy is pure waste there.
        """
        encoded: Optional[str] = None
        if self.cache_dir is not None or self.bounded:
            encoded = canonical_json(result.to_dict())
        # Encode, copy and persist OUTSIDE the lock; only the map update is
        # locked.  Concurrent same-fingerprint writes are safe because
        # atomic_write_text is temp-file + os.replace, and _prune_disk
        # already tolerates racing file removals.
        stored = result if adopt else copy.deepcopy(result)
        with self._lock:
            self._admit(
                fingerprint,
                stored,
                encoded_size=len(encoded.encode()) if encoded is not None else None,
            )
        if self.cache_dir is None:
            return
        try:
            atomic_write_text(self._path(fingerprint), encoded)
        except OSError as error:
            print(
                f"warning: could not persist result {fingerprint[:12]}…: {error}",
                file=sys.stderr,
            )
        else:
            if self.max_disk_bytes is not None:
                self._prune_disk(keep=self._path(fingerprint))

    def _prune_disk(self, keep: Optional[Path] = None) -> None:
        """Delete oldest-mtime persisted results until the directory fits.

        ``keep`` (the file just written) is never pruned, so a single result
        larger than the bound still persists rather than thrashing.  Races
        with concurrent sessions are tolerated: files that vanish mid-scan
        are simply skipped.
        """
        if self.cache_dir is None or self.max_disk_bytes is None:
            return
        entries = []
        try:
            paths = list(self.cache_dir.glob("*.json"))
        except OSError:
            return
        for path in paths:
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        total = sum(size for _, size, _ in entries)
        for _, size, path in sorted(entries, key=lambda entry: entry[0]):
            if total <= self.max_disk_bytes:
                break
            if keep is not None and path == keep:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            with self._lock:
                self.disk_evictions += 1

    def merge_from(self, other: "ResultStore") -> int:
        """Adopt every in-memory result of ``other`` this store lacks.

        Used by :class:`repro.backends.ShardedBackend` to fold shard
        workers' stores back into the dispatching session's store; adopted
        results persist/evict under this store's own policy.  Returns the
        number of newly adopted results.
        """
        added = 0
        with other._lock:
            pending = list(other._memory.items())
        for fingerprint, result in pending:
            # Only the membership check runs under the lock: put() encodes,
            # copies and persists outside it by design, and a long merge
            # must not stall every serving admission for its full duration.
            with self._lock:
                known = fingerprint in self._memory
            if not known:
                self.put(fingerprint, result)
                added += 1
        return added

    def stats(self) -> Dict[str, float]:
        """One flat snapshot of the store's counters and occupancy.

        The supported way to observe a store (callers used to poke at the
        individual attributes): hit/miss/eviction counters, current entry
        count and canonical-JSON footprint, and the derived ``hit_rate``
        (0.0 on an untouched store).  Surfaced by ``repro.cli run
        --verbose`` and, as a live probe, by the ``repro.serve`` telemetry
        registry.
        """
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hits / lookups if lookups else 0.0,
                "evictions": self.evictions,
                "disk_evictions": self.disk_evictions,
                "entries": len(self._memory),
                "total_bytes": self.total_bytes,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            if fingerprint in self._memory:
                return True
            return self.cache_dir is not None and self._path(fingerprint).exists()


# --------------------------------------------------------------------------- #
# Scenario registry
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Scenario:
    """One named entry point of the unified API.

    ``runner`` is called as ``runner(session, **params)`` and returns an
    :class:`~repro.eval.experiments.ExperimentResult`; ``params`` names the
    keyword parameters the scenario accepts (for :meth:`Session.describe`
    and CLI help).
    """

    name: str
    kind: str  # "experiment" | "sweep"
    figure: str
    description: str
    params: Tuple[str, ...]
    runner: Callable[..., ExperimentResult]
    #: whether the scenario's simulations run on the session's
    #: cluster/costs/energy models (False: the scenario is model-free or
    #: hard-wired to the defaults, and Session.run warns when the session
    #: carries custom models that would be silently ignored)
    uses_session_models: bool = False


def _scenario_memory_footprint(session: "Session", batch_size: int = 128,
                               seed: int = 2025, index_bytes: int = 2) -> ExperimentResult:
    return _memory_footprint_impl(batch_size=batch_size, seed=seed, index_bytes=index_bytes)


def _scenario_utilization(session: "Session", batch_size: int = 16, seed: int = 2025,
                          variants: Optional[Dict[str, InferenceResult]] = None
                          ) -> ExperimentResult:
    variants = variants or session.run_variants(batch_size=batch_size, seed=seed)
    return _utilization_impl(variants)


def _scenario_speedup(session: "Session", batch_size: int = 16, seed: int = 2025,
                      variants: Optional[Dict[str, InferenceResult]] = None
                      ) -> ExperimentResult:
    variants = variants or session.run_variants(batch_size=batch_size, seed=seed)
    return _speedup_impl(variants)


def _scenario_energy(session: "Session", batch_size: int = 16, seed: int = 2025,
                     variants: Optional[Dict[str, InferenceResult]] = None
                     ) -> ExperimentResult:
    variants = variants or session.run_variants(batch_size=batch_size, seed=seed)
    return _energy_impl(variants)


def _scenario_svgg11_variants(session: "Session", batch_size: int = 16, seed: int = 2025,
                              firing_rates: Optional[Dict[str, float]] = None,
                              timesteps: int = 1) -> ExperimentResult:
    variants = session.run_variants(
        batch_size=batch_size, seed=seed, firing_rates=firing_rates, timesteps=timesteps
    )
    rows = [{"variant": key, **result.summary()} for key, result in variants.items()]
    baseline = variants["baseline_fp16"]
    stream16 = variants["spikestream_fp16"]
    stream8 = variants["spikestream_fp8"]
    headline = {
        "network_speedup_fp16_over_baseline": ratio(baseline.total_cycles, stream16.total_cycles),
        "network_speedup_fp8_over_baseline": ratio(baseline.total_cycles, stream8.total_cycles),
        "energy_gain_fp16_over_baseline": ratio(baseline.total_energy_j, stream16.total_energy_j),
        "energy_gain_fp8_over_baseline": ratio(baseline.total_energy_j, stream8.total_energy_j),
    }
    return ExperimentResult(
        name="svgg11_variants", figure="summary", rows=rows, headline=headline
    )


def frames_fingerprint(frames) -> str:
    """Canonical hex digest of a batch of input frames (shape, dtype, bytes).

    This is what lets :class:`Session` memoize whole *functional* runs: the
    store key covers the exact pixels, so two different frame batches can
    never share an entry.
    """
    stacked = frames if isinstance(frames, np.ndarray) else np.stack(
        [np.asarray(frame) for frame in frames]
    )
    digest = hashlib.sha256()
    digest.update(repr((stacked.shape, str(stacked.dtype))).encode())
    digest.update(np.ascontiguousarray(stacked).tobytes())
    return digest.hexdigest()


#: LIF threshold of the functional scenario's S-VGG11.  The trained CIFAR-10
#: weights are not public; a lowered threshold keeps spike activity
#: propagating through all eleven randomly-initialized layers so the
#: recorded firing profile resembles a trained model's.
_FUNCTIONAL_V_THRESHOLD = 0.25


def functional_svgg11_setup(batch_size: int = 8, seed: int = 2025):
    """The functional scenario's deterministic workload: ``(network, frames)``.

    Builds the S-VGG11 network (weights seeded by ``seed``) and samples
    ``batch_size`` synthetic CIFAR-10-like frames — the exact workload
    ``benchmarks/bench_functional.py`` times and the ``functional`` scenario
    runs.
    """
    from .snn.datasets import SyntheticCIFAR10
    from .snn.neuron import LIFParameters
    from .snn.svgg11 import build_svgg11

    network = build_svgg11(
        lif=LIFParameters(alpha=0.9, v_threshold=_FUNCTIONAL_V_THRESHOLD), rng=seed
    )
    frames, _ = SyntheticCIFAR10(seed=seed).sample(batch_size)
    return network, frames


def _scenario_functional(session: "Session", batch_size: int = 8, seed: int = 2025,
                         timesteps: int = 1) -> ExperimentResult:
    """The three evaluated S-VGG11 variants on *real* recorded spike activity.

    The functional counterpart of ``svgg11_variants``: one batched forward
    pass records the network's true per-layer activity, and the baseline
    FP16 / SpikeStream FP16 / SpikeStream FP8 performance models are all
    costed on that shared activity (store hits skip even the forward pass).
    """
    network, frames = functional_svgg11_setup(batch_size=batch_size, seed=seed)
    variants = session.run_functional_variants(
        network, frames, batch_size=batch_size, seed=seed, timesteps=timesteps
    )
    rows = [{"variant": key, **result.summary()} for key, result in variants.items()]
    baseline = variants["baseline_fp16"]
    stream16 = variants["spikestream_fp16"]
    stream8 = variants["spikestream_fp8"]
    headline = {
        "network_speedup_fp16_over_baseline": ratio(baseline.total_cycles, stream16.total_cycles),
        "network_speedup_fp8_over_baseline": ratio(baseline.total_cycles, stream8.total_cycles),
        "energy_gain_fp16_over_baseline": ratio(baseline.total_energy_j, stream16.total_energy_j),
        "energy_gain_fp8_over_baseline": ratio(baseline.total_energy_j, stream8.total_energy_j),
    }
    return ExperimentResult(name="functional", figure="functional", rows=rows,
                            headline=headline)


def _scenario_accelerator_comparison(session: "Session", timesteps: int = 500,
                                     batch_size: int = 4, seed: int = 2025
                                     ) -> ExperimentResult:
    return _accelerator_comparison_impl(timesteps=timesteps, batch_size=batch_size, seed=seed)


def _scenario_spva_microbenchmark(session: "Session",
                                  stream_lengths=(1, 2, 4, 8, 16, 32, 64, 128),
                                  seed: int = 2025) -> ExperimentResult:
    return _spva_microbenchmark_impl(stream_lengths=stream_lengths, seed=seed)


def _make_sweep_runner(sweep_name: str) -> Callable[..., ExperimentResult]:
    def runner(session: "Session", seed: Optional[int] = None,
               batch_size: Optional[int] = None, **point_kwargs) -> ExperimentResult:
        return run_sweep(
            sweep_name,
            jobs=session.jobs,
            backend=session.backend,
            seed=session.seed if seed is None else seed,
            batch_size=4 if batch_size is None else batch_size,
            cache=session.sweep_cache,
            executor=session.shared_executor(),
            shards=session.shards,
            **point_kwargs,
        )

    return runner


def _sweep_scenario(spec: SweepSpec) -> Scenario:
    """The scenario-registry entry of one declarative sweep spec."""
    return Scenario(
        name=spec.name,
        kind="sweep",
        figure="sweep",
        description=spec.description or f"parallel {spec.name} sweep",
        params=("seed", "batch_size") + tuple(sorted(spec.kwarg_axes)),
        runner=_make_sweep_runner(spec.name),
    )


def register_sweep(spec: SweepSpec) -> Scenario:
    """Register a declarative sweep in BOTH registries.

    The spec enters :data:`repro.eval.runner.SWEEPS` (so
    :func:`~repro.eval.runner.run_sweep`, :meth:`Session.run_plan` and the
    ``repro.cli plan`` listing see it) and the scenario registry (so
    ``Session.run(name)`` and ``repro.cli run --scenario`` dispatch it).
    Re-registering a name replaces the previous sweep.  This is the whole
    story of adding an experiment: declare a spec, register it, run it on
    any backend.
    """
    _register_sweep_spec(spec)
    scenario = _sweep_scenario(spec)
    SCENARIOS[spec.name] = scenario
    return scenario


def _build_scenarios() -> Dict[str, Scenario]:
    registry: Dict[str, Scenario] = {}

    def add(name, kind, figure, description, params, runner, uses_session_models=False):
        registry[name] = Scenario(name, kind, figure, description, tuple(params), runner,
                                  uses_session_models)

    add("memory_footprint", "experiment", "fig3a",
        "per-layer ifmap footprint under AER vs CSR and the resulting reduction",
        ("batch_size", "seed", "index_bytes"), _scenario_memory_footprint)
    add("utilization", "experiment", "fig3b",
        "per-layer FPU utilization and IPC, baseline vs SpikeStream (FP16)",
        ("batch_size", "seed", "variants"), _scenario_utilization,
        uses_session_models=True)
    add("speedup", "experiment", "fig3c",
        "per-layer and network speedups of SpikeStream FP16/FP8 over the baseline",
        ("batch_size", "seed", "variants"), _scenario_speedup,
        uses_session_models=True)
    add("energy", "experiment", "fig4",
        "per-layer energy and power of the three evaluated variants",
        ("batch_size", "seed", "variants"), _scenario_energy,
        uses_session_models=True)
    add("svgg11_variants", "experiment", "summary",
        "network-level summary of the three S-VGG11 variants over one batch",
        ("batch_size", "seed", "firing_rates", "timesteps"), _scenario_svgg11_variants,
        uses_session_models=True)
    add("functional", "experiment", "functional",
        "the three S-VGG11 variants costed on real recorded spike activity "
        "(one shared batched forward pass)",
        ("batch_size", "seed", "timesteps"), _scenario_functional,
        uses_session_models=True)
    add("accelerator_comparison", "experiment", "fig5",
        "latency/energy comparison with SoA neuromorphic accelerators",
        ("timesteps", "batch_size", "seed"), _scenario_accelerator_comparison)
    add("spva_microbenchmark", "experiment", "listing1",
        "instruction-level SpVA micro-benchmark across stream lengths",
        ("stream_lengths", "seed"), _scenario_spva_microbenchmark)
    for spec in SWEEPS.values():
        registry[spec.name] = _sweep_scenario(spec)
    return registry


SCENARIOS: Dict[str, Scenario] = _build_scenarios()


# --------------------------------------------------------------------------- #
# Worker task (top-level so process pools can pickle it)
# --------------------------------------------------------------------------- #
def _statistical_task(payload) -> InferenceResult:
    config, cluster, costs, energy, batch_size, firing_rates, seed, timesteps = payload
    engine = SpikeStreamInference(config, cluster=cluster, costs=costs, energy=energy)
    return engine.run_statistical(
        batch_size=batch_size, firing_rates=firing_rates, seed=seed, timesteps=timesteps
    )


# --------------------------------------------------------------------------- #
# The Session facade
# --------------------------------------------------------------------------- #
class Session:
    """Long-lived facade over engines, sweeps, experiments and caches.

    Parameters
    ----------
    config:
        Default :class:`~repro.config.RunConfig` of :meth:`run_inference`
        (full SpikeStream FP16 when omitted).
    cluster / costs / energy:
        Hardware models shared by every engine the session builds; they
        enter every result fingerprint, so results cached under one model
        are never served under another.
    jobs:
        Worker count of the shared pool; ``1`` keeps everything serial.
    backend:
        ``"process"`` (default), ``"thread"``, ``"serial"`` or
        ``"sharded"`` (sweep points partitioned across ``shards`` worker
        sessions; see :class:`repro.backends.ShardedBackend`).
    cache_dir:
        Directory persisting the result store (``cache_dir/results/``) and
        the sweep row cache (``cache_dir/sweep_rows.json``) across
        processes.  Omitted: both caches are in-memory for the session's
        lifetime only.
    seed:
        Default base seed of sweeps run through :meth:`run`.
    sweep_cache:
        Explicit :class:`~repro.plan.ResultsCache` overriding the
        ``cache_dir``-derived sweep row cache (the CLI's ``--cache`` flag).
    shards:
        Worker-session count of the ``"sharded"`` backend.
    cache_limit:
        Bound on the result store: an integer caps the in-memory entry
        count, a size string (``"64MB"``) caps the in-memory canonical-JSON
        footprint, and a ``disk:`` clause (``"disk:256MB"``) caps the
        persisted ``cache_dir/results/`` directory with oldest-mtime
        pruning; clauses combine with commas (``"100,disk:256MB"``).
        Least-recently-used in-memory results are evicted (disk-backed
        entries transparently re-load on the next hit); pruned disk entries
        re-simulate on the next miss.
    """

    def __init__(
        self,
        config: Optional[RunConfig] = None,
        cluster: ClusterParams = DEFAULT_CLUSTER,
        costs: CostModelParams = DEFAULT_COSTS,
        energy: EnergyParams = DEFAULT_ENERGY,
        jobs: int = 1,
        backend: str = "process",
        cache_dir: Optional[Union[str, Path]] = None,
        seed: int = 2025,
        sweep_cache: Optional[ResultsCache] = None,
        shards: int = 2,
        cache_limit: Union[None, int, str] = None,
    ):
        if backend not in _BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; expected one of {_BACKENDS}")
        if jobs <= 0:
            raise ValueError(f"jobs must be positive, got {jobs}")
        if shards <= 0:
            raise ValueError(f"shards must be positive, got {shards}")
        self.config = config if config is not None else spikestream_config()
        self.cluster = cluster
        self.costs = costs
        self.energy = energy
        self.jobs = jobs
        self.backend = backend
        self.seed = seed
        self.shards = shards
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        max_entries, max_bytes, max_disk_bytes = _parse_cache_limit(cache_limit)
        self.store = ResultStore(
            self.cache_dir / "results" if self.cache_dir else None,
            max_entries=max_entries,
            max_bytes=max_bytes,
            max_disk_bytes=max_disk_bytes,
        )
        if sweep_cache is not None:
            self.sweep_cache = sweep_cache
        elif self.cache_dir is not None:
            self.sweep_cache = ResultsCache(self.cache_dir / "sweep_rows.json")
        else:
            self.sweep_cache = ResultsCache()
        self._executor: Optional[Executor] = None
        self._executor_failed = False
        # Guards pool creation/teardown: close() may race shared_executor()
        # when a server thread is dispatching while another thread shuts
        # the session down.
        self._lifecycle_lock = threading.RLock()
        #: number of pools created over the session's lifetime; stays at 1
        #: however many sweeps/experiments run (asserted by the tests).
        self.pool_launches = 0

    # -- shared worker pool -------------------------------------------------
    def shared_executor(self) -> Optional[Executor]:
        """The session's lazily created, reused executor (None when serial).

        The first parallel dispatch creates the pool; every later sweep or
        experiment reuses it.  If pool creation fails (e.g. fork refused in
        a restricted environment), or an existing pool breaks (e.g. a
        worker killed mid-run), the dead pool is shut down and the session
        degrades to serial execution permanently instead of re-dispatching
        onto a broken executor on every call.
        """
        # The sharded backend brings its own worker sessions; a shared pool
        # on top of them would only add idle threads.
        if self.jobs <= 1 or self.backend in ("serial", "sharded") or self._executor_failed:
            return None
        with self._lifecycle_lock:
            if self._executor is not None and getattr(self._executor, "_broken", False):
                self._executor.shutdown(wait=False)
                self._executor = None
                self._executor_failed = True
                print(
                    f"warning: shared {self.backend} pool is broken; "
                    "session falls back to serial execution",
                    file=sys.stderr,
                )
                return None
            if self._executor is None:
                pool_cls = ProcessPoolExecutor if self.backend == "process" else ThreadPoolExecutor
                try:
                    self._executor = pool_cls(max_workers=self.jobs)
                    self.pool_launches += 1
                except (OSError, BrokenExecutor) as error:
                    print(
                        f"warning: could not start {self.backend} pool ({error!r}); "
                        "session falls back to serial execution",
                        file=sys.stderr,
                    )
                    self._executor_failed = True
                    return None
            return self._executor

    def close(self) -> None:
        """Drain the shared pool and flush caches (idempotent, thread-safe).

        Safe to call twice, from several threads at once, and while work is
        in flight: the executor is detached under the lifecycle lock (so a
        concurrent :meth:`shared_executor` can never hand out a half-closed
        pool), then shut down with ``wait=True`` so already-dispatched work
        drains rather than being dropped.  The sweep row cache is flushed
        once per close (its dirty tracking makes redundant flushes free);
        caches stay usable afterwards — a closed session can still serve
        store hits and even lazily re-create a pool if new parallel work
        arrives.
        """
        with self._lifecycle_lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)
        self.sweep_cache.save()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- engines and store-backed inference ---------------------------------
    def engine(self, config: Optional[RunConfig] = None) -> SpikeStreamInference:
        """A fresh engine under this session's hardware models."""
        return SpikeStreamInference(
            config if config is not None else self.config,
            cluster=self.cluster,
            costs=self.costs,
            energy=self.energy,
        )

    def fingerprint(
        self,
        config: RunConfig,
        batch_size: Optional[int] = None,
        firing_rates: Optional[Mapping[str, float]] = None,
        seed: Optional[int] = None,
        timesteps: Optional[int] = None,
    ) -> str:
        """Canonical fingerprint of one statistical run under this session.

        Extends :meth:`RunConfig.fingerprint` with the effective run
        parameters (which may override the config's own) and the session's
        hardware models, so two sessions with different cluster/cost/energy
        parameters never share store entries.
        """
        payload = {
            "mode": "statistical",
            "config": config.to_dict(),
            "cluster": asdict(self.cluster),
            "costs": asdict(self.costs),
            "energy": asdict(self.energy),
            "batch_size": batch_size if batch_size is not None else config.batch_size,
            "firing_rates": sorted(firing_rates.items()) if firing_rates else None,
            "seed": seed if seed is not None else config.seed,
            "timesteps": timesteps if timesteps is not None else config.timesteps,
        }
        return hashlib.sha256(canonical_json(payload).encode()).hexdigest()

    def run_inference(
        self,
        config: Optional[RunConfig] = None,
        batch_size: Optional[int] = None,
        firing_rates: Optional[Dict[str, float]] = None,
        seed: Optional[int] = None,
        timesteps: Optional[int] = None,
    ) -> InferenceResult:
        """One statistical S-VGG11 run, memoized in the result store.

        A hit returns the stored result without touching an engine; a miss
        simulates through :meth:`engine` and persists the result (when the
        store is disk-backed) for every later session.
        """
        config = config if config is not None else self.config
        key = self.fingerprint(config, batch_size, firing_rates, seed, timesteps)
        hit = self.store.get(key)
        if hit is not None:
            return hit
        result = self.engine(config).run_statistical(
            batch_size=batch_size, firing_rates=firing_rates, seed=seed, timesteps=timesteps
        )
        self.store.put(key, result)
        return result

    def functional_fingerprint(
        self,
        config: RunConfig,
        network,
        frames,
        firing_rates: Optional[Mapping[str, float]] = None,
        numerics: Optional[NumericsPolicy] = None,
    ) -> str:
        """Canonical fingerprint of one functional run under this session.

        Covers the configuration, the session's hardware models, the
        network's architecture-and-weights digest
        (:meth:`repro.snn.network.SpikingNetwork.fingerprint`), the exact
        frame bytes (:func:`frames_fingerprint`) and the golden-model
        :class:`~repro.snn.numerics.NumericsPolicy` (``None`` -> the FP64
        dense reference), so a stored functional result is only ever served
        for the identical workload — an fp32 or event-sparse run can never
        poison (or be served from) an fp64 reference entry.
        """
        payload = {
            "mode": "functional",
            "config": config.to_dict(),
            "cluster": asdict(self.cluster),
            "costs": asdict(self.costs),
            "energy": asdict(self.energy),
            "network": network.fingerprint(),
            "frames": frames_fingerprint(frames),
            "firing_rates": sorted(firing_rates.items()) if firing_rates else None,
            "numerics": resolve_numerics(numerics).key(),
        }
        return hashlib.sha256(canonical_json(payload).encode()).hexdigest()

    def run_functional(
        self,
        network,
        frames,
        config: Optional[RunConfig] = None,
        firing_rates: Optional[Dict[str, float]] = None,
        activity=None,
        numerics: Optional[NumericsPolicy] = None,
    ) -> InferenceResult:
        """One functional (real-activity) run, memoized in the result store.

        A hit returns the stored result without running the network or the
        performance model; a miss records the batched forward pass
        (:meth:`~repro.core.pipeline.SpikeStreamInference.record_activity`)
        and costs it through the batched functional engine.  ``activity``
        optionally supplies a pre-recorded
        :class:`~repro.snn.network.BatchNetworkActivity` of exactly these
        frames under ``config``'s timesteps (the store key does not cover
        it), letting several variant configs share one forward pass — see
        :meth:`run_functional_variants`.  ``numerics`` selects the
        golden-model policy of the pass and is part of the store key, so
        each policy memoizes under its own entry.
        """
        config = config if config is not None else self.config
        key = self.functional_fingerprint(
            config, network, frames, firing_rates, numerics=numerics
        )
        hit = self.store.get(key)
        if hit is not None:
            return hit
        result = self.engine(config).run_functional(
            network, frames, firing_rates=firing_rates, activity=activity,
            numerics=numerics,
        )
        self.store.put(key, result)
        return result

    def run_functional_variants(
        self,
        network,
        frames,
        batch_size: Optional[int] = None,
        seed: int = 2025,
        firing_rates: Optional[Dict[str, float]] = None,
        timesteps: int = 1,
        activity=None,
        numerics: Optional[NumericsPolicy] = None,
    ) -> Dict[str, InferenceResult]:
        """The three evaluated variants costed on one shared recorded activity.

        The functional counterpart of :meth:`run_variants`: store misses
        share a single batched forward pass (a caller-supplied ``activity``,
        or one recorded on the first miss), so regenerating the
        three-variant comparison costs at most one forward plus three
        batched engine passes — the workload
        ``benchmarks/bench_functional.py`` measures.  ``numerics`` selects
        the golden-model policy of that shared pass (and of each variant's
        store key).
        """
        if batch_size is None:
            batch_size = len(frames)
        configs = svgg11_variant_configs(batch_size=batch_size, seed=seed, timesteps=timesteps)
        results: Dict[str, InferenceResult] = {}
        for key, config in configs.items():
            fingerprint = self.functional_fingerprint(
                config, network, frames, firing_rates, numerics=numerics
            )
            hit = self.store.get(fingerprint)
            if hit is not None:
                results[key] = hit
                continue
            if activity is None:
                activity = self.engine(config).record_activity(
                    network, frames, numerics=numerics
                )
            result = self.engine(config).run_functional(
                network, frames, firing_rates=firing_rates, activity=activity,
                numerics=numerics,
            )
            self.store.put(fingerprint, result)
            results[key] = result
        return results

    def run_variants(
        self,
        batch_size: int = 16,
        seed: int = 2025,
        firing_rates: Optional[Dict[str, float]] = None,
        timesteps: int = 1,
    ) -> Dict[str, InferenceResult]:
        """The three evaluated S-VGG11 variants, store-backed and pooled.

        Store misses are fanned out over the shared executor (one variant
        per worker) when the session is parallel; hits cost nothing.  The
        returned dictionary has the same keys and bit-for-bit the same
        results as :func:`repro.eval.experiments.run_svgg11_variants`.
        """
        configs = svgg11_variant_configs(batch_size=batch_size, seed=seed, timesteps=timesteps)
        fingerprints = {
            key: self.fingerprint(config, batch_size, firing_rates, seed, timesteps)
            for key, config in configs.items()
        }
        results: Dict[str, InferenceResult] = {}
        missing: List[str] = []
        for key in configs:
            hit = self.store.get(fingerprints[key])
            if hit is not None:
                results[key] = hit
            else:
                missing.append(key)
        if missing:
            computed = self._run_statistical_many(
                [configs[key] for key in missing], batch_size, firing_rates, seed, timesteps
            )
            for key, result in zip(missing, computed):
                self.store.put(fingerprints[key], result)
                results[key] = result
        return {key: results[key] for key in configs}

    def _run_statistical_many(
        self,
        configs: Sequence[RunConfig],
        batch_size: int,
        firing_rates: Optional[Dict[str, float]],
        seed: int,
        timesteps: int,
    ) -> List[InferenceResult]:
        payloads = [
            (config, self.cluster, self.costs, self.energy,
             batch_size, firing_rates, seed, timesteps)
            for config in configs
        ]
        # _execute carries the shared dispatch-with-serial-fallback policy;
        # jobs=1 keeps it from creating a private pool when the session has
        # no shared executor.  Sharding applies to sweep *points*, not to
        # the handful of variant runs, so a sharded session computes these
        # serially rather than spinning up worker sessions.
        backend = "serial" if self.backend == "sharded" else self.backend
        return _execute(
            _statistical_task, payloads, 1, backend, self.shared_executor()
        )

    # -- declarative plans ---------------------------------------------------
    def _resolve_spec(self, spec: Union[str, SweepSpec]) -> SweepSpec:
        if isinstance(spec, SweepSpec):
            return spec
        return get_sweep(spec)

    def plan_backend(
        self,
        backend: Union[None, str, ExecutionBackend] = None,
        shards: Optional[int] = None,
    ) -> ExecutionBackend:
        """Resolve a plan's execution backend under this session's knobs.

        ``None`` means "the session's own strategy": the shared pool when
        one exists, the sharded fleet when the session was built with
        ``backend="sharded"``, serial otherwise.  A string picks a strategy
        ad hoc for one plan; a ready-made
        :class:`~repro.backends.ExecutionBackend` passes through.
        """
        if isinstance(backend, ExecutionBackend):
            return backend
        shard_count = self.shards if shards is None else shards
        if backend is None:
            backend = self.backend
        if backend in ("sharded", "net"):
            # Both bring their own workers (threads or processes) and merge
            # caches back; neither rides the session's shared pool.
            return make_backend(backend, shards=shard_count)
        executor = self.shared_executor() if backend == self.backend else None
        return make_backend(backend, jobs=self.jobs, executor=executor)

    def run_plan(
        self,
        spec: Union[str, SweepSpec],
        backend: Union[None, str, ExecutionBackend] = None,
        seed: Optional[int] = None,
        batch_size: Optional[int] = None,
        shards: Optional[int] = None,
        **point_kwargs,
    ) -> Iterator[PlanRow]:
        """Stream a declarative sweep's rows as they complete.

        Accepts a registered sweep name or any :class:`~repro.plan.SweepSpec`
        (including ones never registered).  Rows arrive as
        :class:`~repro.plan.PlanRow` objects the moment the backend finishes
        them — cache hits first, then completion order — each carrying its
        canonical ``index``, so a consumer can render progress long before
        the sweep ends and still reassemble the deterministic row order.
        The session's sweep row cache memoizes every fresh row; for sharded
        backends the worker sessions' caches and stores merge back into this
        session on completion.
        """
        resolved = self._resolve_spec(spec)
        backend_obj = self.plan_backend(backend, shards)
        backend_obj.bind(cache=self.sweep_cache, store=self.store)

        def stream() -> Iterator[PlanRow]:
            try:
                yield from iter_plan(
                    resolved,
                    backend_obj,
                    seed=self.seed if seed is None else seed,
                    batch_size=4 if batch_size is None else batch_size,
                    cache=self.sweep_cache,
                    point_kwargs=point_kwargs,
                )
            finally:
                self.sweep_cache.save()

        return stream()

    def run_spec(
        self,
        spec: Union[str, SweepSpec],
        backend: Union[None, str, ExecutionBackend] = None,
        seed: Optional[int] = None,
        batch_size: Optional[int] = None,
        shards: Optional[int] = None,
        **point_kwargs,
    ) -> ExperimentResult:
        """Run a declarative sweep to completion (collected counterpart of
        :meth:`run_plan`): canonical row order, finalized headline."""
        resolved = self._resolve_spec(spec)
        backend_obj = self.plan_backend(backend, shards)
        backend_obj.bind(cache=self.sweep_cache, store=self.store)
        return collect_plan(
            resolved,
            backend_obj,
            seed=self.seed if seed is None else seed,
            batch_size=4 if batch_size is None else batch_size,
            cache=self.sweep_cache,
            point_kwargs=point_kwargs,
        )

    # -- the scenario registry ----------------------------------------------
    def scenarios(self) -> List[str]:
        """Sorted names accepted by :meth:`run` and :meth:`describe`."""
        return sorted(SCENARIOS)

    def _scenario(self, name: str) -> Scenario:
        scenario = SCENARIOS.get(name)
        if scenario is None:
            raise KeyError(
                f"unknown scenario {name!r}; available: {', '.join(self.scenarios())}"
            )
        return scenario

    def describe(self, name: str) -> Dict[str, object]:
        """Kind, figure, description and accepted parameters of a scenario."""
        scenario = self._scenario(name)
        return {
            "name": scenario.name,
            "kind": scenario.kind,
            "figure": scenario.figure,
            "description": scenario.description,
            "params": list(scenario.params),
        }

    def _models_are_default(self) -> bool:
        return (self.cluster == DEFAULT_CLUSTER and self.costs == DEFAULT_COSTS
                and self.energy == DEFAULT_ENERGY)

    def run(self, name: str, **params) -> ExperimentResult:
        """Execute one registered scenario with the session's pool and caches.

        Experiments that need S-VGG11 variant runs draw them from the result
        store (simulating only on a cold store); sweeps go through
        :func:`~repro.eval.runner.run_sweep` with the session's shared
        executor and sweep row cache.  Scenarios whose point functions are
        hard-wired to the default hardware models (the sweeps, the
        accelerator comparison and the model-free format/ISA studies) warn
        when the session carries custom models they cannot honor.
        """
        scenario = self._scenario(name)
        if not scenario.uses_session_models and not self._models_are_default():
            print(
                f"warning: scenario {name!r} runs on the default hardware models; "
                "this session's custom cluster/cost/energy parameters are ignored",
                file=sys.stderr,
            )
        return scenario.runner(self, **params)


# --------------------------------------------------------------------------- #
# Default session behind the module-level wrapper functions
# --------------------------------------------------------------------------- #
_DEFAULT_SESSION: Optional[Session] = None


def default_session() -> Session:
    """The process-wide serial session backing the legacy module functions."""
    global _DEFAULT_SESSION
    if _DEFAULT_SESSION is None:
        _DEFAULT_SESSION = Session()
    return _DEFAULT_SESSION
