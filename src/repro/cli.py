"""Command-line interface for the SpikeStream reproduction.

Five subcommands cover the common workflows::

    python -m repro.cli run        --precision fp16 --batch 8        # S-VGG11 inference
    python -m repro.cli figures    --figure fig3c --batch 8          # regenerate one figure
    python -m repro.cli compare    --timesteps 500                   # Figure-5 comparison
    python -m repro.cli spva       --lengths 1 8 64                  # Listing-1 micro-benchmark
    python -m repro.cli sweep      --sweep firing_rate --jobs 4      # parallel parameter sweep

Every command prints an aligned text table (the same rows the corresponding
paper figure reports); ``sweep`` can also emit machine-readable JSON or CSV
(``--format json|csv``), fan its points out over a worker pool (``--jobs``),
and memoize point results in a JSON cache file (``--cache``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .config import baseline_config, spikestream_config
from .core.pipeline import SpikeStreamInference
from .eval.experiments import (
    accelerator_comparison_experiment,
    energy_experiment,
    memory_footprint_experiment,
    run_svgg11_variants,
    speedup_experiment,
    spva_microbenchmark_experiment,
    utilization_experiment,
)
from .eval.reporting import (
    experiment_to_json,
    format_table,
    render_experiment,
    rows_to_csv,
)
from .eval.runner import ResultsCache, available_sweeps, run_sweep
from .types import Precision

_FIGURES = ("fig3a", "fig3b", "fig3c", "fig4", "fig5", "listing1")


def _positive_int(value: str) -> int:
    number = int(value)
    if number <= 0:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return number


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser("run", help="run S-VGG11 inference on the cluster model")
    run.add_argument("--precision", default="fp16", choices=[p.value for p in Precision])
    run.add_argument("--baseline", action="store_true", help="disable streaming acceleration")
    run.add_argument("--batch", type=_positive_int, default=8, help="number of synthetic frames")
    run.add_argument("--timesteps", type=_positive_int, default=1)
    run.add_argument("--seed", type=int, default=2025)

    figures = subparsers.add_parser("figures", help="regenerate one of the paper's figures")
    figures.add_argument("--figure", required=True, choices=_FIGURES)
    figures.add_argument("--batch", type=_positive_int, default=None,
                         help="frames per run (default: 8; 16 for fig3a)")
    figures.add_argument("--seed", type=int, default=2025)

    compare = subparsers.add_parser("compare", help="Figure-5 accelerator comparison")
    compare.add_argument("--timesteps", type=_positive_int, default=500)
    compare.add_argument("--batch", type=_positive_int, default=4)
    compare.add_argument("--seed", type=int, default=2025)

    spva = subparsers.add_parser("spva", help="Listing-1 SpVA micro-benchmark")
    spva.add_argument("--lengths", type=int, nargs="+", default=[1, 2, 4, 8, 16, 32, 64, 128])

    sweep = subparsers.add_parser(
        "sweep", help="run a parameter sweep, optionally over a worker pool"
    )
    sweep.add_argument("--sweep", required=True, choices=available_sweeps())
    sweep.add_argument("--jobs", type=_positive_int, default=1,
                       help="worker count (1 = serial)")
    sweep.add_argument("--backend", choices=("process", "thread", "serial"),
                       default="process", help="worker-pool kind used when --jobs > 1")
    sweep.add_argument("--format", choices=("table", "json", "csv"), default="table",
                       dest="output_format")
    sweep.add_argument("--batch", type=_positive_int, default=4,
                       help="batch size of full-network sweep points")
    sweep.add_argument("--seed", type=int, default=2025)
    sweep.add_argument("--cache", default=None, metavar="PATH",
                       help="JSON file memoizing per-point results across invocations")
    sweep.add_argument("--output", default=None, metavar="PATH",
                       help="write the rendered output to a file instead of stdout")
    return parser


def _command_run(args: argparse.Namespace) -> str:
    precision = Precision.from_name(args.precision)
    factory = baseline_config if args.baseline else spikestream_config
    config = factory(precision, batch_size=args.batch, timesteps=args.timesteps, seed=args.seed)
    engine = SpikeStreamInference(config)
    result = engine.run_statistical(batch_size=args.batch, seed=args.seed)
    variant = "baseline" if args.baseline else "SpikeStream"
    lines = [
        f"== S-VGG11 on the Snitch cluster model ({variant}, {precision.value}, "
        f"batch {args.batch}, {args.timesteps} timestep(s)) ==",
        format_table(result.per_layer_table(), columns=[
            "layer", "kernel", "mean_runtime_ms", "mean_fpu_utilization", "mean_ipc",
            "mean_energy_mj", "mean_power_w",
        ]),
        "",
        format_table([result.summary()]),
    ]
    return "\n".join(lines)


#: Figure 3a reports mean/std footprints over the batch; below this batch
#: size the statistics are noisy, but the user's request is still honored.
_FIG3A_RECOMMENDED_BATCH = 16


def _command_figures(args: argparse.Namespace) -> str:
    # Each figure has its own default batch; an *explicitly requested* batch
    # is always honored, with a warning when fig3a's statistics get noisy.
    default_batch = _FIG3A_RECOMMENDED_BATCH if args.figure == "fig3a" else 8
    batch = args.batch if args.batch is not None else default_batch
    if args.figure == "fig3a":
        if batch < _FIG3A_RECOMMENDED_BATCH:
            print(
                f"warning: fig3a statistics are noisy below batch "
                f"{_FIG3A_RECOMMENDED_BATCH}; running with requested batch {batch}",
                file=sys.stderr,
            )
        result = memory_footprint_experiment(batch_size=batch, seed=args.seed)
    elif args.figure == "fig5":
        result = accelerator_comparison_experiment(batch_size=batch, seed=args.seed)
    elif args.figure == "listing1":
        result = spva_microbenchmark_experiment(seed=args.seed)
    else:
        variants = run_svgg11_variants(batch_size=batch, seed=args.seed)
        driver = {
            "fig3b": utilization_experiment,
            "fig3c": speedup_experiment,
            "fig4": energy_experiment,
        }[args.figure]
        result = driver(variants=variants)
    notes = "headline: " + ", ".join(f"{k}={v:.4g}" for k, v in result.headline.items())
    return render_experiment(f"{result.figure}: {result.name}", result.rows, notes=notes)


def _command_compare(args: argparse.Namespace) -> str:
    result = accelerator_comparison_experiment(
        timesteps=args.timesteps, batch_size=args.batch, seed=args.seed
    )
    notes = "headline: " + ", ".join(f"{k}={v:.4g}" for k, v in result.headline.items())
    return render_experiment("Figure 5: accelerator comparison", result.rows, notes=notes)


def _command_sweep(args: argparse.Namespace) -> str:
    cache = ResultsCache(args.cache) if args.cache else None
    result = run_sweep(
        args.sweep,
        jobs=args.jobs,
        backend=args.backend,
        seed=args.seed,
        batch_size=args.batch,
        cache=cache,
    )
    if args.output_format == "json":
        rendered = experiment_to_json(result)
    elif args.output_format == "csv":
        rendered = rows_to_csv(result.rows)
    else:
        notes = "headline: " + ", ".join(f"{k}={v:.4g}" for k, v in result.headline.items())
        rendered = render_experiment(f"sweep: {result.name}", result.rows, notes=notes)
    if args.output:
        try:
            with open(args.output, "w") as handle:
                handle.write(rendered if rendered.endswith("\n") else rendered + "\n")
        except OSError as error:
            raise SystemExit(f"error: cannot write --output file: {error}")
        return f"wrote {args.output_format} output to {args.output}"
    return rendered


def _command_spva(args: argparse.Namespace) -> str:
    result = spva_microbenchmark_experiment(stream_lengths=tuple(args.lengths))
    notes = "headline: " + ", ".join(f"{k}={v:.4g}" for k, v in result.headline.items())
    return render_experiment("Listing 1: SpVA micro-benchmark", result.rows, notes=notes)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "run": _command_run,
        "figures": _command_figures,
        "compare": _command_compare,
        "spva": _command_spva,
        "sweep": _command_sweep,
    }
    output = handlers[args.command](args)
    print(output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
