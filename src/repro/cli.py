"""Command-line interface for the SpikeStream reproduction.

Four subcommands cover the common workflows::

    python -m repro.cli run        --precision fp16 --batch 8        # S-VGG11 inference
    python -m repro.cli figures    --figure fig3c --batch 8          # regenerate one figure
    python -m repro.cli compare    --timesteps 500                   # Figure-5 comparison
    python -m repro.cli spva       --lengths 1 8 64                  # Listing-1 micro-benchmark

Every command prints an aligned text table (the same rows the corresponding
paper figure reports).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .config import baseline_config, spikestream_config
from .core.pipeline import SpikeStreamInference
from .eval.experiments import (
    accelerator_comparison_experiment,
    energy_experiment,
    memory_footprint_experiment,
    run_svgg11_variants,
    speedup_experiment,
    spva_microbenchmark_experiment,
    utilization_experiment,
)
from .eval.reporting import format_table, render_experiment
from .types import Precision

_FIGURES = ("fig3a", "fig3b", "fig3c", "fig4", "fig5", "listing1")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser("run", help="run S-VGG11 inference on the cluster model")
    run.add_argument("--precision", default="fp16", choices=[p.value for p in Precision])
    run.add_argument("--baseline", action="store_true", help="disable streaming acceleration")
    run.add_argument("--batch", type=int, default=8, help="number of synthetic frames")
    run.add_argument("--timesteps", type=int, default=1)
    run.add_argument("--seed", type=int, default=2025)

    figures = subparsers.add_parser("figures", help="regenerate one of the paper's figures")
    figures.add_argument("--figure", required=True, choices=_FIGURES)
    figures.add_argument("--batch", type=int, default=8)
    figures.add_argument("--seed", type=int, default=2025)

    compare = subparsers.add_parser("compare", help="Figure-5 accelerator comparison")
    compare.add_argument("--timesteps", type=int, default=500)
    compare.add_argument("--batch", type=int, default=4)
    compare.add_argument("--seed", type=int, default=2025)

    spva = subparsers.add_parser("spva", help="Listing-1 SpVA micro-benchmark")
    spva.add_argument("--lengths", type=int, nargs="+", default=[1, 2, 4, 8, 16, 32, 64, 128])
    return parser


def _command_run(args: argparse.Namespace) -> str:
    precision = Precision.from_name(args.precision)
    factory = baseline_config if args.baseline else spikestream_config
    config = factory(precision, batch_size=args.batch, timesteps=args.timesteps, seed=args.seed)
    engine = SpikeStreamInference(config)
    result = engine.run_statistical(batch_size=args.batch, seed=args.seed)
    variant = "baseline" if args.baseline else "SpikeStream"
    lines = [
        f"== S-VGG11 on the Snitch cluster model ({variant}, {precision.value}, "
        f"batch {args.batch}, {args.timesteps} timestep(s)) ==",
        format_table(result.per_layer_table(), columns=[
            "layer", "kernel", "mean_runtime_ms", "mean_fpu_utilization", "mean_ipc",
            "mean_energy_mj", "mean_power_w",
        ]),
        "",
        format_table([result.summary()]),
    ]
    return "\n".join(lines)


def _command_figures(args: argparse.Namespace) -> str:
    if args.figure == "fig3a":
        result = memory_footprint_experiment(batch_size=max(args.batch, 16), seed=args.seed)
    elif args.figure == "fig5":
        result = accelerator_comparison_experiment(batch_size=args.batch, seed=args.seed)
    elif args.figure == "listing1":
        result = spva_microbenchmark_experiment(seed=args.seed)
    else:
        variants = run_svgg11_variants(batch_size=args.batch, seed=args.seed)
        driver = {
            "fig3b": utilization_experiment,
            "fig3c": speedup_experiment,
            "fig4": energy_experiment,
        }[args.figure]
        result = driver(variants=variants)
    notes = "headline: " + ", ".join(f"{k}={v:.4g}" for k, v in result.headline.items())
    return render_experiment(f"{result.figure}: {result.name}", result.rows, notes=notes)


def _command_compare(args: argparse.Namespace) -> str:
    result = accelerator_comparison_experiment(
        timesteps=args.timesteps, batch_size=args.batch, seed=args.seed
    )
    notes = "headline: " + ", ".join(f"{k}={v:.4g}" for k, v in result.headline.items())
    return render_experiment("Figure 5: accelerator comparison", result.rows, notes=notes)


def _command_spva(args: argparse.Namespace) -> str:
    result = spva_microbenchmark_experiment(stream_lengths=tuple(args.lengths))
    notes = "headline: " + ", ".join(f"{k}={v:.4g}" for k, v in result.headline.items())
    return render_experiment("Listing 1: SpVA micro-benchmark", result.rows, notes=notes)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "run": _command_run,
        "figures": _command_figures,
        "compare": _command_compare,
        "spva": _command_spva,
    }
    output = handlers[args.command](args)
    print(output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
