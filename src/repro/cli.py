"""Command-line interface for the SpikeStream reproduction.

Six subcommands cover the common workflows, all built on the unified
:class:`repro.session.Session` API::

    python -m repro.cli run        --precision fp16 --batch 8        # S-VGG11 inference
    python -m repro.cli run        --scenario speedup --jobs 4       # any registered scenario
    python -m repro.cli run        --list-scenarios                  # what can I run?
    python -m repro.cli figures    --figure fig3c --batch 8          # regenerate one figure
    python -m repro.cli compare    --timesteps 500                   # Figure-5 comparison
    python -m repro.cli spva       --lengths 1 8 64                  # Listing-1 micro-benchmark
    python -m repro.cli sweep      --sweep firing_rate --jobs 4      # parallel parameter sweep
    python -m repro.cli sweep      --sweep firing_rate --backend sharded --shards 4
    python -m repro.cli plan       --list                            # declarative sweep specs
    python -m repro.cli serve      --workers 2 --max-batch 16        # micro-batching service demo
    python -m repro.cli serve      --trace-out spans.jsonl --stats-out stats.json
    python -m repro.cli trace      --input spans.jsonl --format chrome --output trace.json
    python -m repro.cli check      --format json                     # repo lint rules (repro.lint)

Every command prints an aligned text table (the same rows the corresponding
paper figure reports); ``run`` and ``sweep`` can also emit machine-readable
JSON or CSV (``--format json|csv``) through one shared reporting path.
``--jobs``/``--backend`` size the session's shared worker pool
(``--backend sharded --shards N`` instead partitions sweep points across N
worker sessions), and ``--cache-dir`` points the session's persistent
result store (whole inference runs) and sweep row cache at a directory, so
repeated invocations — e.g. regenerating several figures that share the
same S-VGG11 variant runs — skip work already done.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .config import baseline_config, spikestream_config
from .eval.experiments import ExperimentResult
from .eval.reporting import EXPORT_FORMATS, export_experiment, format_table
from .eval.runner import ResultsCache, SWEEPS, available_sweeps, get_sweep
from .session import Session
from .snn.numerics import FORWARD_PATHS as NUMERICS_FORWARD_PATHS
from .snn.numerics import PRECISIONS as NUMERICS_PRECISIONS
from .snn.numerics import NumericsPolicy, resolve as resolve_numerics
from .types import Precision

_FIGURES = ("fig3a", "fig3b", "fig3c", "fig4", "fig5", "listing1")

#: figure name -> scenario name in the session registry
_FIGURE_SCENARIOS = {
    "fig3a": "memory_footprint",
    "fig3b": "utilization",
    "fig3c": "speedup",
    "fig4": "energy",
    "fig5": "accelerator_comparison",
    "listing1": "spva_microbenchmark",
}


def _positive_int(value: str) -> int:
    number = int(value)
    if number <= 0:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return number


def _add_session_arguments(parser: argparse.ArgumentParser, jobs_default: int = 1) -> None:
    parser.add_argument("--jobs", type=_positive_int, default=jobs_default,
                        help="worker count of the session's shared pool (1 = serial)")
    parser.add_argument("--backend",
                        choices=("process", "thread", "serial", "sharded", "net"),
                        default="process",
                        help="execution backend: a worker-pool kind used when "
                             "--jobs > 1, 'sharded' to partition sweep points "
                             "across --shards worker sessions, or 'net' to run "
                             "each shard in a worker OS process over the "
                             "repro.net wire")
    parser.add_argument("--shards", type=_positive_int, default=2,
                        help="worker-session count of the sharded/net backends")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="directory persisting the session's result store and "
                             "sweep row cache across invocations")
    parser.add_argument("--cache-limit", default=None, metavar="LIMIT",
                        help="bound the result store: an entry count, an in-memory "
                             "size ('64MB'), and/or a persisted-directory bound "
                             "('disk:256MB'); comma-combine clauses")


def _add_export_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--format", choices=EXPORT_FORMATS, default="table",
                        dest="output_format",
                        help="output format (one shared reporting path for "
                             "run and sweep)")
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="write the rendered output to a file instead of stdout")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser("run", help="run S-VGG11 inference or a registered scenario")
    run.add_argument("--precision", default="fp16", choices=[p.value for p in Precision])
    run.add_argument("--baseline", action="store_true", help="disable streaming acceleration")
    run.add_argument("--mode", choices=("statistical", "functional"), default="statistical",
                     help="statistical (firing-rate profile, default) or functional "
                          "(a real S-VGG11 forward pass supplies the spike activity "
                          "through the batched functional engine)")
    # --precision above selects the simulated HARDWARE precision (the cost
    # model); these two select the GOLDEN MODEL's own numerics
    # (repro.snn.numerics.NumericsPolicy), functional mode only.
    run.add_argument("--golden-precision", choices=NUMERICS_PRECISIONS, default=None,
                     help="golden-model dtype of the functional forward pass "
                          "(default: fp64, the bit-for-bit reference; distinct "
                          "from --precision, which is the simulated hardware "
                          "precision)")
    run.add_argument("--forward-path", choices=NUMERICS_FORWARD_PATHS, default=None,
                     help="golden-model forward path of the functional pass: "
                          "dense im2row GEMMs (default) or event_sparse "
                          "(gather active spike rows; cost scales with nnz)")
    # None sentinels: plain inference resolves them to 8 frames / 1 timestep,
    # while --scenario keeps each scenario's own defaults unless the user
    # explicitly overrides them.
    run.add_argument("--batch", type=_positive_int, default=None,
                     help="number of synthetic frames (default: 8; scenarios "
                          "keep their own default unless set)")
    run.add_argument("--timesteps", type=_positive_int, default=None,
                     help="SNN timesteps (default: 1; scenarios keep their own "
                          "default unless set)")
    run.add_argument("--seed", type=int, default=2025)
    run.add_argument("--scenario", default=None, metavar="NAME",
                     help="run a registered Session scenario (see --list-scenarios) "
                          "instead of plain inference")
    run.add_argument("--list-scenarios", action="store_true",
                     help="list every registered scenario and exit")
    run.add_argument("--verbose", action="store_true",
                     help="print session diagnostics (result-store hit/miss/"
                          "eviction counters) to stderr after the run")
    _add_export_arguments(run)
    _add_session_arguments(run)

    figures = subparsers.add_parser("figures", help="regenerate one of the paper's figures")
    figures.add_argument("--figure", required=True, choices=_FIGURES)
    figures.add_argument("--batch", type=_positive_int, default=None,
                         help="frames per run (default: 8; 16 for fig3a)")
    figures.add_argument("--seed", type=int, default=2025)
    _add_session_arguments(figures)

    compare = subparsers.add_parser("compare", help="Figure-5 accelerator comparison")
    compare.add_argument("--timesteps", type=_positive_int, default=500)
    compare.add_argument("--batch", type=_positive_int, default=4)
    compare.add_argument("--seed", type=int, default=2025)

    spva = subparsers.add_parser("spva", help="Listing-1 SpVA micro-benchmark")
    spva.add_argument("--lengths", type=int, nargs="+", default=[1, 2, 4, 8, 16, 32, 64, 128])

    sweep = subparsers.add_parser(
        "sweep", help="run a parameter sweep over a worker pool or sharded sessions"
    )
    sweep.add_argument("--sweep", required=True, choices=available_sweeps())
    sweep.add_argument("--batch", type=_positive_int, default=4,
                       help="batch size of full-network sweep points")
    sweep.add_argument("--seed", type=int, default=2025)
    sweep.add_argument("--cache", default=None, metavar="PATH",
                       help="JSON file memoizing per-point results across invocations")
    _add_export_arguments(sweep)
    _add_session_arguments(sweep)

    plan = subparsers.add_parser(
        "plan", help="inspect the declarative sweep specs (SweepSpec registry)"
    )
    plan.add_argument("--list", action="store_true", dest="list_plans",
                      help="list every registered sweep spec (default action)")
    plan.add_argument("--describe", default=None, metavar="NAME",
                      help="show one spec's axes, columns and parameters")

    serve = subparsers.add_parser(
        "serve",
        help="run the micro-batching inference service under synthetic load",
        description="Start an in-process repro.serve.InferenceServer, drive it "
                    "with an open-loop synthetic load and report the service "
                    "telemetry (throughput, latency percentiles, batch sizes, "
                    "store hit rate).",
    )
    serve.add_argument("--workers", type=_positive_int, default=2,
                       help="server worker threads (in-process mode)")
    serve.add_argument("--distributed", action="store_true",
                       help="serve through repro.net: a coordinator whose "
                            "queue is drained by remote worker processes "
                            "instead of in-process worker threads")
    serve.add_argument("--credit", type=_positive_int, default=None,
                       metavar="N",
                       help="credit window spawned workers advertise: batches "
                            "the coordinator may keep in flight per worker "
                            "(--distributed; default 2)")
    serve.add_argument("--blob-threshold", type=_positive_int, default=None,
                       metavar="BYTES",
                       help="arrays at or above this size cross the wire as "
                            "content digests served from the blob cache "
                            "(--distributed; default 65536)")
    serve.add_argument("--wire-compress", action="store_true",
                       help="deflate large wire buffers (worth it for sparse "
                            "spike tensors; overhead for dense weights)")
    serve.add_argument("--workers-remote", type=_positive_int, default=2,
                       metavar="N",
                       help="worker processes to spawn under --distributed")
    serve.add_argument("--max-batch", type=_positive_int, default=16,
                       help="micro-batch flush bound in coalesced frames")
    serve.add_argument("--max-wait-ms", type=float, default=5.0,
                       help="micro-batch flush bound in milliseconds")
    serve.add_argument("--queue-depth", type=_positive_int, default=256,
                       help="admission bound of the request queue")
    serve.add_argument("--requests", type=_positive_int, default=64,
                       help="synthetic requests to fire")
    serve.add_argument("--arrival-rate", type=float, default=None, metavar="HZ",
                       help="open-loop arrival rate in requests/s "
                            "(default: one concurrent burst)")
    serve.add_argument("--mode", choices=("statistical", "functional"),
                       default="statistical",
                       help="workload of the synthetic requests")
    serve.add_argument("--precision", choices=NUMERICS_PRECISIONS, default="fp64",
                       help="golden-model dtype of functional requests "
                            "(server default_numerics; fp64 is the "
                            "bit-for-bit reference)")
    serve.add_argument("--forward-path", choices=NUMERICS_FORWARD_PATHS,
                       default="dense",
                       help="golden-model forward path of functional "
                            "requests: dense GEMMs or event_sparse "
                            "(cost scales with active spikes)")
    serve.add_argument("--batch", type=_positive_int, default=1,
                       help="frames per request (micro-batching coalesces "
                            "across requests)")
    serve.add_argument("--timesteps", type=_positive_int, default=1)
    serve.add_argument("--seed", type=int, default=2025)
    serve.add_argument("--deadline-ms", type=float, default=None,
                       help="per-request deadline; queued requests expire "
                            "past it")
    serve.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="directory persisting the serving session's "
                            "result store")
    serve.add_argument("--cache-limit", default=None, metavar="LIMIT",
                       help="bound the serving session's result store "
                            "(see `run --cache-limit`)")
    serve.add_argument("--format", choices=("table", "json"), default="table",
                       dest="output_format",
                       help="telemetry output format")
    serve.add_argument("--output", default=None, metavar="PATH",
                       help="write the rendered output to a file instead of stdout")
    serve.add_argument("--stats-out", default=None, metavar="PATH",
                       help="also write the final MetricsRegistry snapshot "
                            "as JSON to this file (a machine-readable "
                            "artifact of the load run)")
    serve.add_argument("--trace-out", default=None, metavar="PATH",
                       help="enable request tracing and write completed "
                            "traces to this file as JSONL span records "
                            "(render them with `repro.cli trace`)")
    serve.add_argument("--trace-sample", type=float, default=1.0, metavar="P",
                       help="per-trace sampling probability under "
                            "--trace-out (default: 1.0, trace everything)")
    serve.add_argument("--profile-layers", action="store_true",
                       help="record per-layer engine timings inside every "
                            "traced engine pass (needs --trace-out)")

    worker = subparsers.add_parser(
        "worker",
        help="run a repro.net worker host connected to a coordinator",
        description="Connect to a repro.net coordinator (e.g. `repro.cli "
                    "serve --distributed`), register, heartbeat, and execute "
                    "pulled micro-batches and plan shards until the cluster "
                    "shuts down.",
    )
    worker.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="the coordinator's listen address")
    worker.add_argument("--worker-id", default=None,
                        help="requested registration name (the coordinator "
                             "may uniquify it)")
    worker.add_argument("--heartbeat-ms", type=float, default=200.0,
                        help="heartbeat cadence; the coordinator's "
                             "registration ack overrides it")
    worker.add_argument("--seed", type=int, default=2025)
    worker.add_argument("--credit", type=_positive_int, default=None,
                        metavar="N",
                        help="advertised credit window: batches the "
                             "coordinator may keep in flight here (default 2)")
    worker.add_argument("--blob-threshold", type=_positive_int, default=None,
                        metavar="BYTES",
                        help="arrays at or above this size cross the wire as "
                             "content digests (default 65536)")
    worker.add_argument("--wire-compress", action="store_true",
                        help="deflate large wire buffers on send")
    worker.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="directory persisting this worker's result store")
    # Chaos levers for the rescue tests and smoke: hang or hard-exit the
    # process after N batches.  Deliberately undocumented in --help.
    worker.add_argument("--chaos-hang-after", type=int, default=None,
                        help=argparse.SUPPRESS)
    worker.add_argument("--chaos-exit-after", type=int, default=None,
                        help=argparse.SUPPRESS)

    trace = subparsers.add_parser(
        "trace",
        help="render a span export written by `serve --trace-out`",
        description="Read the JSONL span records `repro.cli serve "
                    "--trace-out` exports and render them as a "
                    "chrome://tracing / Perfetto `trace_event` document "
                    "(or normalized JSONL, one span per line).",
    )
    trace.add_argument("--input", required=True, metavar="PATH",
                       help="JSONL span export (`serve --trace-out PATH`)")
    trace.add_argument("--format", choices=("chrome", "jsonl"),
                       default="chrome", dest="output_format",
                       help="chrome: a trace_event JSON document loadable "
                            "in chrome://tracing and Perfetto; jsonl: one "
                            "span record per line")
    trace.add_argument("--output", default=None, metavar="PATH",
                       help="write the rendered export to a file instead "
                            "of stdout")

    from .lint import RULES

    check = subparsers.add_parser(
        "check",
        help="run the repository's static-analysis rules (repro.lint)",
        description="Run the registered AST lint rules over the repository "
                    "sources and report findings in the shared gate-report "
                    "schema (benchmarks/common.py). Exits non-zero on any "
                    "finding, so it can gate CI directly.",
    )
    check.add_argument("--rule", action="append", choices=sorted(RULES),
                       default=None, metavar="NAME", dest="rules",
                       help="run only this rule (repeatable; default: all, "
                            "plus the unused-suppression check)")
    check.add_argument("--format", choices=("text", "json"), default="text",
                       dest="output_format",
                       help="text findings or the shared JSON gate report")
    check.add_argument("--fix-suppressions", action="store_true",
                       help="rewrite source files removing suppression "
                            "comments that suppress nothing")
    check.add_argument("--root", default=None, metavar="DIR",
                       help="project root to lint (default: this checkout)")
    return parser


def _session_from_args(args: argparse.Namespace, **kwargs) -> Session:
    return Session(
        jobs=getattr(args, "jobs", 1),
        backend=getattr(args, "backend", "process"),
        cache_dir=getattr(args, "cache_dir", None),
        seed=getattr(args, "seed", 2025),
        shards=getattr(args, "shards", 2),
        cache_limit=getattr(args, "cache_limit", None),
        **kwargs,
    )


def _render_result(title: str, result) -> str:
    return export_experiment(result, "table", title=title)


def _emit(rendered: str, args: argparse.Namespace) -> str:
    """Deliver rendered output: to ``--output`` when given, else stdout."""
    output = getattr(args, "output", None)
    if not output:
        return rendered
    try:
        with open(output, "w") as handle:
            handle.write(rendered if rendered.endswith("\n") else rendered + "\n")
    except OSError as error:
        raise SystemExit(f"error: cannot write --output file: {error}")
    return f"wrote {args.output_format} output to {output}"


def _list_scenarios(session: Session) -> str:
    rows = []
    for name in session.scenarios():
        info = session.describe(name)
        rows.append(
            {
                "scenario": name,
                "kind": info["kind"],
                "figure": info["figure"],
                "parameters": ", ".join(info["params"]),
                "description": info["description"],
            }
        )
    return format_table(rows, columns=["scenario", "kind", "figure", "parameters",
                                       "description"])


def _numerics_from_args(args: argparse.Namespace) -> Optional[NumericsPolicy]:
    """`run`'s golden-model policy, or ``None`` when neither flag was given."""
    precision = getattr(args, "golden_precision", None)
    forward_path = getattr(args, "forward_path", None)
    if precision is None and forward_path is None:
        return None
    return NumericsPolicy(
        precision=precision or "fp64", forward_path=forward_path or "dense"
    )


def _print_session_diagnostics(session: Session, args: argparse.Namespace) -> None:
    """`run --verbose`: result-store counters on stderr, one line."""
    if not getattr(args, "verbose", False):
        return
    stats = session.store.stats()
    print(
        "result store: "
        + " ".join(
            f"{key}={stats[key]:.3g}" if key == "hit_rate" else f"{key}={stats[key]}"
            for key in ("hits", "misses", "hit_rate", "entries",
                        "evictions", "disk_evictions")
        ),
        file=sys.stderr,
    )
    if getattr(args, "mode", None) == "functional":
        policy = resolve_numerics(_numerics_from_args(args))
        print(
            f"numerics: policy={policy.key()} precision={policy.precision} "
            f"forward_path={policy.forward_path} reference={policy.is_reference}",
            file=sys.stderr,
        )


def _command_run(args: argparse.Namespace) -> str:
    with _session_from_args(args) as session:
        if args.list_scenarios:
            return _list_scenarios(session)
        if args.scenario is not None:
            try:
                info = session.describe(args.scenario)
            except KeyError as error:
                raise SystemExit(f"error: {error.args[0]}")
            # Forward only flags the user explicitly set, so every scenario
            # keeps its own defaults (e.g. accelerator_comparison's 500
            # timesteps, memory_footprint's batch of 128).
            params = {"seed": args.seed}
            if args.batch is not None and "batch_size" in info["params"]:
                params["batch_size"] = args.batch
            if args.timesteps is not None and "timesteps" in info["params"]:
                params["timesteps"] = args.timesteps
            # Plain-inference flags a scenario cannot consume are called out
            # instead of silently ignored.
            ignored = []
            if args.baseline:
                ignored.append("--baseline")
            if args.precision != "fp16":
                ignored.append("--precision")
            if args.mode != "statistical":
                ignored.append("--mode")
            if args.golden_precision is not None:
                ignored.append("--golden-precision")
            if args.forward_path is not None:
                ignored.append("--forward-path")
            if args.timesteps is not None and "timesteps" not in info["params"]:
                ignored.append("--timesteps")
            if args.batch is not None and "batch_size" not in info["params"]:
                ignored.append("--batch")
            if ignored:
                print(
                    f"warning: {', '.join(ignored)} not supported by scenario "
                    f"{args.scenario!r}; ignored",
                    file=sys.stderr,
                )
            result = session.run(args.scenario, **params)
            _print_session_diagnostics(session, args)
            rendered = export_experiment(
                result, args.output_format,
                title=f"scenario {args.scenario} ({info['figure']})",
            )
            return _emit(rendered, args)

        batch = args.batch if args.batch is not None else 8
        timesteps = args.timesteps if args.timesteps is not None else 1
        precision = Precision.from_name(args.precision)
        factory = baseline_config if args.baseline else spikestream_config
        config = factory(precision, batch_size=batch, timesteps=timesteps, seed=args.seed)
        numerics = _numerics_from_args(args)
        if args.mode == "functional":
            # A real S-VGG11 forward pass supplies the spike activity; the
            # batched functional engine costs it (store-backed, so repeated
            # invocations with --cache-dir skip both forward and model).
            from .session import functional_svgg11_setup

            network, frames = functional_svgg11_setup(batch_size=batch, seed=args.seed)
            result = session.run_functional(
                network, frames, config=config, numerics=numerics
            )
        else:
            if numerics is not None:
                print(
                    "warning: --golden-precision/--forward-path select the "
                    "functional golden model's numerics; ignored in "
                    "statistical mode",
                    file=sys.stderr,
                )
            result = session.run_inference(config, batch_size=batch, seed=args.seed)
        _print_session_diagnostics(session, args)
        variant = "baseline" if args.baseline else "SpikeStream"
        if args.output_format != "table":
            # Machine-readable runs go through the same reporting path as
            # scenarios and sweeps: per-layer rows + numeric network summary.
            table = ExperimentResult(
                name=f"svgg11_{variant.lower()}_{args.mode}_inference",
                figure="run",
                rows=result.per_layer_table(),
                headline={key: value for key, value in result.summary().items()
                          if isinstance(value, (int, float))},
            )
            return _emit(export_experiment(table, args.output_format), args)
        golden = (
            f", golden {resolve_numerics(numerics).key()}"
            if args.mode == "functional" else ""
        )
        lines = [
            f"== S-VGG11 on the Snitch cluster model ({variant}, {args.mode}, "
            f"{precision.value}, batch {batch}, {timesteps} timestep(s)"
            f"{golden}) ==",
            format_table(result.per_layer_table(), columns=[
                "layer", "kernel", "mean_runtime_ms", "mean_fpu_utilization", "mean_ipc",
                "mean_energy_mj", "mean_power_w",
            ]),
            "",
            format_table([result.summary()]),
        ]
        return _emit("\n".join(lines), args)


#: Figure 3a reports mean/std footprints over the batch; below this batch
#: size the statistics are noisy, but the user's request is still honored.
_FIG3A_RECOMMENDED_BATCH = 16


def _command_figures(args: argparse.Namespace) -> str:
    # Each figure has its own default batch; an *explicitly requested* batch
    # is always honored, with a warning when fig3a's statistics get noisy.
    default_batch = _FIG3A_RECOMMENDED_BATCH if args.figure == "fig3a" else 8
    batch = args.batch if args.batch is not None else default_batch
    if args.figure == "fig3a" and batch < _FIG3A_RECOMMENDED_BATCH:
        print(
            f"warning: fig3a statistics are noisy below batch "
            f"{_FIG3A_RECOMMENDED_BATCH}; running with requested batch {batch}",
            file=sys.stderr,
        )
    scenario = _FIGURE_SCENARIOS[args.figure]
    with _session_from_args(args) as session:
        params = {"seed": args.seed}
        if "batch_size" in session.describe(scenario)["params"]:
            params["batch_size"] = batch
        result = session.run(scenario, **params)
    return _render_result(f"{result.figure}: {result.name}", result)


def _command_compare(args: argparse.Namespace) -> str:
    with Session(seed=args.seed) as session:
        result = session.run(
            "accelerator_comparison",
            timesteps=args.timesteps, batch_size=args.batch, seed=args.seed,
        )
    return _render_result("Figure 5: accelerator comparison", result)


def _command_sweep(args: argparse.Namespace) -> str:
    sweep_cache = ResultsCache(args.cache) if args.cache else None
    with _session_from_args(args, sweep_cache=sweep_cache) as session:
        result = session.run(args.sweep, seed=args.seed, batch_size=args.batch)
    rendered = export_experiment(result, args.output_format, title=f"sweep: {result.name}")
    return _emit(rendered, args)


def _command_plan(args: argparse.Namespace) -> str:
    if args.describe is not None:
        try:
            spec = get_sweep(args.describe)
        except KeyError as error:
            raise SystemExit(f"error: {error.args[0]}")
        info = spec.describe()
        lines = [f"== sweep spec: {spec.name} =="]
        lines.append(format_table([{
            "axes": info["axes"],
            "points": info["points"],
            "seeded": info["seeded"],
            "parameters": ", ".join(info["parameters"]),
        }]))
        if info["columns"]:
            lines.append("columns: " + ", ".join(info["columns"]))
        if info["description"]:
            lines.append(info["description"])
        return "\n".join(lines)
    rows = []
    for name in sorted(SWEEPS):
        info = SWEEPS[name].describe()
        rows.append({
            "sweep": name,
            "points": info["points"],
            "axes": info["axes"],
            "parameters": ", ".join(info["parameters"]),
            "description": info["description"],
        })
    return format_table(rows, columns=["sweep", "points", "axes", "parameters",
                                       "description"])


def _flatten_telemetry(snapshot) -> List[dict]:
    """Nested snapshot -> sorted (metric, value) rows for the text table."""
    rows = []
    for name, value in sorted(snapshot.items()):
        if isinstance(value, dict):
            for key, inner in sorted(value.items()):
                rows.append({"metric": f"{name}.{key}", "value": inner})
        else:
            rows.append({"metric": name, "value": value})
    return rows


def _command_serve(args: argparse.Namespace) -> str:
    import json as json_module

    from .config import spikestream_config as make_config
    from .serve import InferenceServer, LoadGenerator

    session = Session(
        cache_dir=args.cache_dir, seed=args.seed, cache_limit=args.cache_limit
    )
    config = make_config(
        batch_size=args.batch, timesteps=args.timesteps, seed=args.seed
    )
    deadline_s = args.deadline_ms / 1e3 if args.deadline_ms is not None else None
    numerics = NumericsPolicy(
        precision=args.precision, forward_path=args.forward_path
    )
    if args.mode != "functional" and not numerics.is_reference:
        print(
            "warning: --precision/--forward-path shape functional requests "
            "only; the statistical workload ignores them",
            file=sys.stderr,
        )
    tracer = None
    if args.trace_out:
        from .obs import Tracer

        tracer = Tracer(
            enabled=True,
            sample=args.trace_sample,
            capacity=max(args.requests, 256),
            profile_layers=args.profile_layers,
            seed=args.seed,
        )
    elif args.profile_layers:
        print(
            "warning: --profile-layers records into traces; ignored "
            "without --trace-out",
            file=sys.stderr,
        )
    service_kwargs = dict(
        session=session,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        max_queue=args.queue_depth,
        default_deadline_s=deadline_s,
        default_numerics=numerics,
        tracer=tracer,
    )
    processes = []
    if args.distributed:
        from .net import Coordinator, spawn_worker

        server = Coordinator(
            blob_threshold=args.blob_threshold,
            wire_compress=args.wire_compress,
            **service_kwargs,
        )
        # Under --format json stdout is a machine-parsed document; the
        # workers' exit summaries must not interleave into it.
        processes = [
            spawn_worker(
                server.address,
                quiet=args.output_format == "json",
                credit=args.credit,
                blob_threshold=args.blob_threshold,
                wire_compress=args.wire_compress,
            )
            for _ in range(args.workers_remote)
        ]
        if not server.wait_for_workers(args.workers_remote, timeout=60.0):
            for process in processes:
                process.terminate()
            server.close(drain=False)
            session.close()
            raise SystemExit(
                f"error: only {server.live_workers()} of "
                f"{args.workers_remote} worker processes registered"
            )
    else:
        server = InferenceServer(workers=args.workers, **service_kwargs)
    with session, server:
        if args.mode == "functional":
            from .session import functional_svgg11_setup

            network, frames = functional_svgg11_setup(
                batch_size=args.requests * args.batch, seed=args.seed
            )

            def submit(index: int):
                chunk = frames[index * args.batch:(index + 1) * args.batch]
                return server.submit_functional(network, chunk, config=config)

        else:

            def submit(index: int):
                # Distinct seeds keep every request distinct work (no
                # store short-circuit) while staying coalescible.
                return server.submit_statistical(
                    config=config, batch_size=args.batch,
                    seed=args.seed + index, timesteps=args.timesteps,
                )

        generator = LoadGenerator(
            submit, requests=args.requests, arrival_rate_hz=args.arrival_rate
        )
        report = generator.run()
        snapshot = server.stats()
    for process in processes:
        try:
            process.wait(timeout=10.0)
        except Exception:
            process.terminate()
    if args.stats_out:
        try:
            with open(args.stats_out, "w") as handle:
                json_module.dump(snapshot, handle, sort_keys=True, indent=2)
                handle.write("\n")
        except OSError as error:
            raise SystemExit(f"error: cannot write --stats-out file: {error}")
    if args.trace_out:
        from .obs import to_jsonl

        traces = server.tracer.completed()
        try:
            with open(args.trace_out, "w") as handle:
                spans_written = to_jsonl(traces, handle)
        except OSError as error:
            raise SystemExit(f"error: cannot write --trace-out file: {error}")
        print(
            f"traces: {len(traces)} completed, {spans_written} spans "
            f"-> {args.trace_out}",
            file=sys.stderr,
        )
    if args.output_format == "json":
        rendered = json_module.dumps(
            {"load": report.to_dict(), "telemetry": snapshot}, sort_keys=True
        )
        return _emit(rendered, args)
    golden = f", golden {numerics.key()}" if args.mode == "functional" else ""
    fleet = (
        f"workers-remote={args.workers_remote}" if args.distributed
        else f"workers={args.workers}"
    )
    lines = [
        f"== repro.serve demo ({args.mode}, {args.requests} requests x "
        f"{args.batch} frame(s), {fleet}, "
        f"max_batch={args.max_batch}, max_wait={args.max_wait_ms}ms"
        f"{golden}) ==",
        format_table([report.to_dict()]),
        "",
        format_table(_flatten_telemetry(snapshot), columns=["metric", "value"]),
    ]
    return _emit("\n".join(lines), args)


def _command_worker(args: argparse.Namespace) -> str:
    from .net import NetWorker

    host, _, port_text = args.connect.rpartition(":")
    if not host or not port_text.isdigit():
        raise SystemExit(
            f"error: --connect expects HOST:PORT, got {args.connect!r}"
        )
    session = Session(cache_dir=args.cache_dir, seed=args.seed)
    worker_kwargs = {}
    if args.credit is not None:
        worker_kwargs["credit"] = args.credit
    worker = NetWorker(
        (host, int(port_text)),
        session=session,
        worker_id=args.worker_id,
        heartbeat_interval_s=args.heartbeat_ms / 1e3,
        chaos_hang_after=args.chaos_hang_after,
        chaos_exit_after=args.chaos_exit_after,
        blob_threshold=args.blob_threshold,
        wire_compress=args.wire_compress,
        **worker_kwargs,
    )
    with session:
        counters = worker.run()
    detail = ", ".join(f"{key}={value}" for key, value in sorted(counters.items()))
    return f"worker {worker.worker_id or '?'} done: {detail}"


def _load_gate_schema():
    """The shared gate-report schema module (``benchmarks/common.py``).

    The schema has exactly one definition, shared with ``tools/bench_gate.py``
    and ``tools/gate.py``; it is loaded by path because ``benchmarks/`` is a
    scripts directory, not an installed package.
    """
    import importlib.util

    from .lint.engine import REPO_ROOT

    path = REPO_ROOT / "benchmarks" / "common.py"
    if not path.exists():
        raise SystemExit(
            f"error: shared gate schema not found at {path} "
            f"(`repro.cli check` lints a full repository checkout)"
        )
    spec = importlib.util.spec_from_file_location("repro_benchmarks_common", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _command_check(args: argparse.Namespace) -> str:
    from pathlib import Path

    from .lint import RULES, check_project, fix_suppressions
    from .lint.engine import REPO_ROOT

    schema = _load_gate_schema()
    root = Path(args.root) if args.root else REPO_ROOT
    result = check_project(root=root, rule_names=args.rules)
    fixed: List[str] = []
    if args.fix_suppressions and result.unused:
        fixed = [str(path) for path in fix_suppressions(root, result.unused)]
        result = check_project(root=root, rule_names=args.rules)

    checks = []
    by_rule = {}
    for finding in result.findings:
        by_rule.setdefault(finding.rule, []).append(finding)
    for rule_name in result.rules:
        findings = by_rule.get(rule_name, [])
        checks.append(schema.gate_check(
            name=rule_name,
            passed=not findings,
            detail=(f"{len(findings)} finding(s)" if findings
                    else RULES[rule_name].description),
            data={"findings": [finding.to_dict() for finding in findings]},
        ))
    unused_findings = by_rule.get("unused-suppression", [])
    if not args.rules:  # the unused-suppression check only runs on full runs
        checks.append(schema.gate_check(
            name="unused-suppression",
            passed=not unused_findings,
            detail=(f"{len(unused_findings)} stale suppression(s)"
                    if unused_findings else
                    "every `# lint: disable=` comment suppresses something"),
            data={"findings": [finding.to_dict() for finding in unused_findings]},
        ))
    report = schema.gate_report("lint", checks)
    report["summary"]["files"] = result.files
    report["summary"]["suppressed"] = result.suppressed
    if fixed:
        report["summary"]["fixed_files"] = fixed

    if args.output_format == "json":
        import json as json_module

        rendered = json_module.dumps(report, sort_keys=True)
    else:
        lines = [finding.format() for finding in result.findings]
        if fixed:
            lines.append(f"rewrote {len(fixed)} file(s) removing stale suppressions")
        verdict = "passed" if report["passed"] else "FAILED"
        lines.append(
            f"lint {verdict}: {result.files} file(s), "
            f"{len(result.rules)} rule(s), {len(result.findings)} finding(s), "
            f"{result.suppressed} suppressed"
        )
        rendered = "\n".join(lines)
    if report["passed"]:
        return rendered
    print(rendered)
    raise SystemExit(1)


def _command_trace(args: argparse.Namespace) -> str:
    import io
    import json as json_module

    from .obs import read_jsonl, to_chrome, to_jsonl

    try:
        with open(args.input) as handle:
            traces = read_jsonl(handle)
    except OSError as error:
        raise SystemExit(f"error: cannot read --input file: {error}")
    if args.output_format == "chrome":
        rendered = json_module.dumps(to_chrome(traces), sort_keys=True)
    else:
        buffer = io.StringIO()
        to_jsonl(traces, buffer)
        rendered = buffer.getvalue().rstrip("\n")
    return _emit(rendered, args)


def _command_spva(args: argparse.Namespace) -> str:
    with Session() as session:
        result = session.run("spva_microbenchmark", stream_lengths=tuple(args.lengths))
    return _render_result("Listing 1: SpVA micro-benchmark", result)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "run": _command_run,
        "figures": _command_figures,
        "compare": _command_compare,
        "spva": _command_spva,
        "sweep": _command_sweep,
        "plan": _command_plan,
        "serve": _command_serve,
        "worker": _command_worker,
        "trace": _command_trace,
        "check": _command_check,
    }
    output = handlers[args.command](args)
    print(output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
