"""Static analysis and runtime race detection for this repository.

Two halves:

* :mod:`repro.lint.engine` + :mod:`repro.lint.rules` — a pluggable AST
  rule engine (:data:`RULES` registry, per-line ``# lint: disable=<rule>``
  suppressions with an unused-suppression check) enforcing the repo's own
  invariants: lock discipline, seeded RNG on golden paths, dtype
  discipline, picklable sweep points, frozen-array integrity,
  registry/README consistency, mutable defaults, ``__all__`` hygiene.
* :mod:`repro.lint.locktrace` — a runtime lock-order tracer
  (:class:`LockTracer`) detecting acquisition-order cycles (potential
  deadlocks) and unguarded shared-state access in the live serving stack.

Run it: ``python -m repro.cli check`` (or ``tools/check.py``); tier-1
wiring lives in ``tools/smoke.py``'s ``check`` step and ``tests/lint/``.
"""

from .engine import (
    CheckResult,
    Finding,
    ParsedModule,
    Project,
    RULES,
    Rule,
    UNUSED_SUPPRESSION,
    check_project,
    fix_suppressions,
    load_project,
    register,
)
from . import rules  # noqa: F401  (importing registers the rule set)
from .locktrace import (
    GuardedMapping,
    LockOrderError,
    LockTracer,
    TracedLock,
    UnguardedAccessError,
    instrument_collector,
    instrument_server,
)

__all__ = [
    "CheckResult",
    "Finding",
    "GuardedMapping",
    "LockOrderError",
    "LockTracer",
    "ParsedModule",
    "Project",
    "RULES",
    "Rule",
    "TracedLock",
    "UNUSED_SUPPRESSION",
    "UnguardedAccessError",
    "check_project",
    "fix_suppressions",
    "instrument_collector",
    "instrument_server",
    "load_project",
    "register",
]
