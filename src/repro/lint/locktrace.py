"""Runtime lock-order and shared-state tracing for the concurrency tests.

The static :mod:`repro.lint.rules` catch unguarded *writes the AST can
see*; this module catches what only execution reveals:

* **lock-order cycles** — :class:`LockTracer` wraps the locks of a live
  component in :class:`TracedLock` proxies, records per-thread acquisition
  order, and maintains the directed lock-order graph (edge ``a -> b``: some
  thread acquired ``b`` while holding ``a``).  A new edge that closes a
  cycle is a potential deadlock — two threads have taken the same pair of
  locks in opposite orders, even if the interleaving that would actually
  deadlock has not happened yet — and raises :class:`LockOrderError`
  immediately (or is recorded, with ``raise_on_cycle=False``).
* **unguarded shared-state access** — :meth:`LockTracer.guard_mapping`
  wraps a dict-like shared structure in a :class:`GuardedMapping` proxy
  that fails any access made by a thread not currently holding the
  structure's declared lock, turning "we always take the store lock" from
  convention into an assertion that runs under real concurrent load.

:func:`instrument_server` wires a whole
:class:`~repro.serve.server.InferenceServer` (request queue + condition,
metrics registry, result store and its LRU map, close lock) onto one
tracer; the serve tests enable it through a fixture and drive 32 concurrent
mixed-mode requests through it (``tools/smoke.py``'s ``check`` step runs
the same scenario).

:class:`TracedLock` implements the private ``_is_owned`` /
``_release_save`` / ``_acquire_restore`` hooks, so a
``threading.Condition`` built on a traced lock (the request queue's
``_not_empty``) works unchanged, including ``wait()``'s full release of a
reentrant hold.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, List, Optional, Set, Tuple

__all__ = [
    "GuardedMapping",
    "LockOrderError",
    "LockTracer",
    "TracedLock",
    "UnguardedAccessError",
    "instrument_collector",
    "instrument_coordinator",
    "instrument_metrics",
    "instrument_queue",
    "instrument_server",
    "instrument_store",
]


class LockOrderError(AssertionError):
    """Two locks were acquired in opposite orders: a potential deadlock."""


class UnguardedAccessError(AssertionError):
    """A guarded shared structure was accessed without its declared lock."""


class TracedLock:
    """A Lock/RLock proxy reporting acquisitions/releases to a tracer.

    Reentrant acquisitions are tracked but only the *first* acquisition of
    a lock per thread records lock-order edges (re-entering a lock you hold
    cannot invert an order).  Condition compatibility is preserved via the
    ``_is_owned``/``_release_save``/``_acquire_restore`` protocol.
    """

    def __init__(self, tracer: "LockTracer", name: str, inner):
        self._tracer = tracer
        self.name = name
        self._inner = inner

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            try:
                self._tracer._note_acquire(self.name)
            except LockOrderError:
                # The caller's `with` block will not run, so nothing will
                # release the inner lock; release it before propagating.
                self._inner.release()
                raise
        return acquired

    def release(self) -> None:
        self._tracer._note_release(self.name)
        self._inner.release()

    def __enter__(self) -> "TracedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    # -- threading.Condition compatibility -----------------------------------
    def _is_owned(self) -> bool:
        if hasattr(self._inner, "_is_owned"):
            return self._inner._is_owned()
        # Plain Lock: "owned" means this thread recorded an unreleased acquire.
        return self._tracer.held_count(self.name) > 0

    def _release_save(self):
        depth = self._tracer._note_release_all(self.name)
        if hasattr(self._inner, "_release_save"):
            return (self._inner._release_save(), depth)
        self._inner.release()
        return (None, depth)

    def _acquire_restore(self, state) -> None:
        saved, depth = state
        if saved is not None and hasattr(self._inner, "_acquire_restore"):
            self._inner._acquire_restore(saved)
        else:
            self._inner.acquire()
        self._tracer._note_acquire(self.name, count=depth)

    def locked(self) -> bool:
        if hasattr(self._inner, "locked"):
            return self._inner.locked()
        return False

    def __repr__(self) -> str:
        return f"TracedLock({self.name!r}, held={self._tracer.held()})"


class LockTracer:
    """Per-thread acquisition stacks plus the global lock-order graph."""

    def __init__(self, raise_on_cycle: bool = True):
        self.raise_on_cycle = raise_on_cycle
        self._meta = threading.Lock()
        self._graph: Dict[str, Set[str]] = {}
        self._local = threading.local()
        self._violations: List[str] = []
        self._acquires = 0

    # -- wrapping ------------------------------------------------------------
    def wrap(self, inner, name: str) -> TracedLock:
        """Wrap an existing (unheld) lock object under ``name``."""
        return TracedLock(self, name, inner)

    def rlock(self, name: str) -> TracedLock:
        return self.wrap(threading.RLock(), name)

    def lock(self, name: str) -> TracedLock:
        return self.wrap(threading.Lock(), name)

    def guard_mapping(self, mapping, lock: TracedLock, name: str) -> "GuardedMapping":
        """A proxy failing any access without ``lock`` held by the accessor."""
        return GuardedMapping(mapping, lock, name, self)

    # -- per-thread state ----------------------------------------------------
    def _stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def held(self) -> Tuple[str, ...]:
        """Lock names the calling thread holds, outermost first."""
        ordered: List[str] = []
        for name in self._stack():
            if name not in ordered:
                ordered.append(name)
        return tuple(ordered)

    def held_count(self, name: str) -> int:
        return self._stack().count(name)

    # -- event recording -----------------------------------------------------
    def _note_acquire(self, name: str, count: int = 1) -> None:
        stack = self._stack()
        if name not in stack:
            holders = list(dict.fromkeys(stack))
            with self._meta:
                self._acquires += 1
                for held in holders:
                    if name not in self._graph.setdefault(held, set()):
                        self._graph[held].add(name)
                        cycle = self._cycle_path(name, held)
                        if cycle:
                            message = (
                                f"lock-order cycle: acquired {name!r} while "
                                f"holding {held!r}, but the reverse order "
                                f"{' -> '.join(cycle)} was also observed"
                            )
                            self._violations.append(message)
                            if self.raise_on_cycle:
                                raise LockOrderError(message)
        stack.extend([name] * count)

    def _note_release(self, name: str) -> None:
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] == name:
                del stack[index]
                return

    def _note_release_all(self, name: str) -> int:
        """Drop every hold of ``name`` (Condition.wait); returns the depth."""
        stack = self._stack()
        depth = stack.count(name)
        self._local.stack = [held for held in stack if held != name]
        return depth

    def _cycle_path(self, src: str, dst: str) -> Optional[List[str]]:
        """A path ``src -> ... -> dst`` in the graph (closing edge dst->src).

        Must be called with ``self._meta`` held.
        """
        seen: Set[str] = set()

        def walk(node: str, path: List[str]) -> Optional[List[str]]:
            if node == dst:
                return path + [node]
            if node in seen:
                return None
            seen.add(node)
            for successor in sorted(self._graph.get(node, ())):
                found = walk(successor, path + [node])
                if found:
                    return found
            return None

        return walk(src, [])

    def _record_violation(self, message: str) -> None:
        self._violations.append(message)

    # -- inspection ----------------------------------------------------------
    def edges(self) -> Dict[str, Tuple[str, ...]]:
        """The observed lock-order graph (copy)."""
        with self._meta:
            return {src: tuple(sorted(dsts)) for src, dsts in self._graph.items()}

    @property
    def acquire_count(self) -> int:
        """Total first-acquisitions observed (proof the wiring took effect).

        Only outermost acquisitions count — the same quantity the order
        graph is built from — so a zero here means the instrumented locks
        were never actually taken.
        """
        with self._meta:
            return self._acquires

    @property
    def violations(self) -> Tuple[str, ...]:
        return tuple(self._violations)

    def assert_clean(self) -> None:
        """Raise :class:`AssertionError` listing any recorded violation."""
        if self._violations:
            raise AssertionError(
                "lock tracing recorded violation(s):\n  "
                + "\n  ".join(self._violations)
            )


_GUARDED_METHODS = (
    "get", "items", "keys", "values", "pop", "popitem", "setdefault",
    "clear", "update", "move_to_end", "copy",
)


class GuardedMapping:
    """A dict-like proxy asserting its declared lock is held on every access.

    Wraps the real mapping; the wrapping component keeps working unchanged
    (every dict/OrderedDict operation it performs is forwarded), but any
    access from a thread that does not currently own ``lock`` raises
    :class:`UnguardedAccessError` — and is recorded on the tracer either
    way, so a swallowed exception still fails ``assert_clean()``.
    """

    def __init__(self, inner, lock: TracedLock, name: str, tracer: LockTracer):
        self._inner = inner
        self._lock = lock
        self._name = name
        self._tracer = tracer

    def _check(self) -> None:
        if not self._lock._is_owned():
            message = (
                f"{self._name} accessed without holding {self._lock.name!r} "
                f"(thread {threading.current_thread().name})"
            )
            self._tracer._record_violation(message)
            raise UnguardedAccessError(message)

    def __getattr__(self, attr: str):
        if attr in _GUARDED_METHODS:
            self._check()
        return getattr(self._inner, attr)

    def __getitem__(self, key):
        self._check()
        return self._inner[key]

    def __setitem__(self, key, value) -> None:
        self._check()
        self._inner[key] = value

    def __delitem__(self, key) -> None:
        self._check()
        del self._inner[key]

    def __contains__(self, key) -> bool:
        self._check()
        return key in self._inner

    def __len__(self) -> int:
        self._check()
        return len(self._inner)

    def __bool__(self) -> bool:
        self._check()
        return bool(self._inner)

    def __iter__(self) -> Iterator:
        self._check()
        return iter(self._inner)


# --------------------------------------------------------------------------- #
# Component instrumentation
# --------------------------------------------------------------------------- #
def instrument_store(store, tracer: LockTracer, name: str = "store") -> None:
    """Trace a :class:`~repro.session.ResultStore`'s lock and LRU map."""
    traced = tracer.wrap(threading.RLock(), name)
    store._lock = traced
    store._memory = tracer.guard_mapping(store._memory, traced, f"{name}._memory")


def instrument_metrics(registry, tracer: LockTracer, name: str = "metrics") -> None:
    """Trace a :class:`~repro.serve.metrics.MetricsRegistry`'s shared lock.

    Every existing instrument shares the registry lock, so all of them are
    re-pointed at the traced replacement.
    """
    traced = tracer.wrap(threading.RLock(), name)
    registry._lock = traced
    for instrument in registry._instruments.values():
        instrument._lock = traced


def instrument_queue(queue, tracer: LockTracer, name: str = "queue") -> None:
    """Trace a :class:`~repro.serve.queue.RequestQueue`'s lock + condition."""
    traced = tracer.wrap(threading.Lock(), name)
    queue._lock = traced
    queue._not_empty = threading.Condition(traced)


def instrument_collector(collector, tracer: LockTracer,
                         name: str = "obs.collector") -> None:
    """Trace a :class:`~repro.obs.TraceCollector`'s lock and trace table.

    The table (``_traces``) is mutated by every span-producing thread —
    server workers, the coordinator's link threads, the monitor's rescue
    path — so it gets the guarded-mapping treatment like the result store's
    LRU map.
    """
    traced = tracer.wrap(threading.Lock(), name)
    collector._lock = traced
    collector._traces = tracer.guard_mapping(
        collector._traces, traced, f"{name}._traces"
    )


def instrument_server(server, tracer: Optional[LockTracer] = None) -> LockTracer:
    """Wire one :class:`~repro.serve.server.InferenceServer` onto a tracer.

    Instruments the request queue (lock + condition), the metrics registry,
    the close lock, and the session's result store (lock + guarded LRU
    map).  Call right after constructing the server, **before submitting
    load**: idle workers re-read the queue's condition on every pop timeout
    (50 ms), so the swap settles before the first request arrives.
    """
    import time

    tracer = tracer if tracer is not None else LockTracer()
    instrument_queue(server.queue, tracer, name="serve.queue")
    instrument_metrics(server.metrics, tracer, name="serve.metrics")
    instrument_store(server.session.store, tracer, name="session.store")
    server._close_lock = tracer.wrap(threading.Lock(), "serve.close")
    collector = getattr(getattr(server, "tracer", None), "collector", None)
    if collector is not None:
        instrument_collector(collector, tracer)
    # Idle workers wait on the queue's previous condition for up to one pop
    # timeout (50 ms); give every worker one cycle to re-read the traced
    # replacement before the caller starts submitting.
    time.sleep(0.12)
    return tracer


def instrument_coordinator(coordinator, tracer: Optional[LockTracer] = None) -> LockTracer:
    """Wire one :class:`~repro.net.coordinator.Coordinator` onto a tracer.

    A coordinator is an :class:`~repro.serve.server.InferenceServer` with
    zero local workers, so :func:`instrument_server` covers the queue,
    metrics, close lock and store; on top of those this traces the
    cluster-state lock (``net.links``) and guards the worker-link table —
    the map the accept loop, per-worker serve threads, the liveness
    monitor and ``close()`` all mutate concurrently.  Call right after
    construction, **before** workers connect or load is submitted: links
    registered through the untraced lock would dodge the guard.
    """
    tracer = instrument_server(coordinator, tracer)
    traced = tracer.wrap(threading.Lock(), "net.links")
    coordinator._net_lock = traced
    coordinator._links = tracer.guard_mapping(
        coordinator._links, traced, "net._links"
    )
    return tracer
