"""The repository's registered lint rules.

Each rule encodes one invariant the test suite cannot watch everywhere at
once; see the class docstrings for what each catches and why it matters.
Rules self-register into :data:`repro.lint.engine.RULES` at import time,
so adding a rule is: subclass :class:`~repro.lint.engine.Rule`, decorate
with :func:`~repro.lint.engine.register`, done — ``repro.cli check`` and
the smoke step pick it up automatically.

Every rule is exercised by a seeded-violation fixture under
``tests/lint/fixtures/`` proving it fires, and the repository itself must
pass the full set clean (``python -m repro.cli check``).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from .engine import Finding, ParsedModule, Project, Rule, register

__all__ = [
    "AllExportsRule",
    "DtypeDisciplineRule",
    "FrozenMutationRule",
    "LockDisciplineRule",
    "MutableDefaultRule",
    "RegistryDocsRule",
    "SocketDisciplineRule",
    "SpanDisciplineRule",
    "UnpicklablePointRule",
    "UnseededRngRule",
]


# --------------------------------------------------------------------------- #
# Shared AST helpers
# --------------------------------------------------------------------------- #
def _dotted(node: ast.AST) -> str:
    """Dotted name of a Name/Attribute chain (``np.random.rand``), or ''."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _functions(tree: ast.AST) -> Iterator[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _self_attr(node: ast.AST) -> Optional[str]:
    """``attr`` when ``node`` is ``self.<attr>``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


_LOCK_CONSTRUCTORS = {
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
}


# --------------------------------------------------------------------------- #
# R1 — lock discipline
# --------------------------------------------------------------------------- #
@register
class LockDisciplineRule(Rule):
    """An attribute guarded by a lock somewhere must be guarded everywhere.

    For every class owning a lock attribute (``self._lock = threading.Lock()``
    and friends), any instance attribute that is assigned under ``with
    self._lock:`` in one method must not be assigned outside such a block in
    any other method — the classic torn-counter/teared-map race in
    ``repro.serve`` and :class:`~repro.session.ResultStore`.

    Conventions honored: ``__init__`` publishes before sharing, so its
    writes are exempt; methods named ``*_locked`` document that their caller
    already holds the lock; nested callback functions are skipped (their
    execution context is not the enclosing method's).  Container-element
    mutation (``self._map[k] = v``) is the runtime tracer's job
    (:class:`repro.lint.locktrace.GuardedMapping`), not this rule's.
    """

    name = "lock-discipline"
    description = (
        "attributes assigned under a lock in one method must not be "
        "assigned unguarded elsewhere in the class"
    )

    def check_module(self, module: ParsedModule, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(module, node))
        return findings

    def _lock_attrs(self, cls: ast.ClassDef) -> Set[str]:
        locks: Set[str] = set()
        for node in ast.walk(cls):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                ctor = _dotted(node.value.func).rsplit(".", 1)[-1]
                if ctor in _LOCK_CONSTRUCTORS:
                    for target in node.targets:
                        attr = _self_attr(target)
                        if attr is not None:
                            locks.add(attr)
        return locks

    def _collect_writes(
        self,
        body: Iterable[ast.stmt],
        locks: Set[str],
        held: Tuple[str, ...],
        out: List[Tuple[str, int, Tuple[str, ...]]],
    ) -> None:
        """Record every ``self.<attr>`` assignment with the locks held there."""
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # nested definitions run in another context
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    attr = _self_attr(target)
                    if attr is not None:
                        out.append((attr, stmt.lineno, held))
            elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
                attr = _self_attr(stmt.target)
                if attr is not None:
                    out.append((attr, stmt.lineno, held))
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                acquired = tuple(
                    attr
                    for item in stmt.items
                    for attr in [_self_attr(item.context_expr)]
                    if attr is not None and attr in locks
                )
                self._collect_writes(stmt.body, locks, held + acquired, out)
                continue
            for field in ("body", "orelse", "finalbody", "handlers"):
                children = getattr(stmt, field, None)
                if children:
                    blocks = [
                        child.body if isinstance(child, ast.ExceptHandler) else [child]
                        for child in children
                    ]
                    for block in blocks:
                        self._collect_writes(block, locks, held, out)

    def _check_class(
        self, module: ParsedModule, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        locks = self._lock_attrs(cls)
        if not locks:
            return
        writes: Dict[str, List[Tuple[str, int, Tuple[str, ...]]]] = {}
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            collected: List[Tuple[str, int, Tuple[str, ...]]] = []
            self._collect_writes(method.body, locks, (), collected)
            for attr, lineno, held in collected:
                writes.setdefault(attr, []).append((method.name, lineno, held))
        guarded: Dict[str, Tuple[str, str]] = {}
        for attr, sites in writes.items():
            for method_name, _, held in sites:
                if held:
                    guarded[attr] = (held[-1], method_name)
                    break
        for attr, sites in writes.items():
            if attr not in guarded or attr in locks:
                continue
            lock, guarded_in = guarded[attr]
            for method_name, lineno, held in sites:
                if held or method_name == "__init__" or method_name.endswith("_locked"):
                    continue
                yield module.finding(
                    self.name,
                    lineno,
                    f"{cls.name}.{attr} is written under self.{lock} in "
                    f"{guarded_in}() but unguarded here in {method_name}()",
                )


# --------------------------------------------------------------------------- #
# R2 — no unseeded RNG on golden-model paths
# --------------------------------------------------------------------------- #
@register
class UnseededRngRule(Rule):
    """No global-state RNG draws where bit-for-bit reproducibility is law.

    On the golden-model paths (``snn/``, ``kernels/``, engine modules) and
    the serving tiers replaying them (``serve/``, ``net/`` — where the
    cluster-equality gates assert bit-for-bit results) every random draw
    must come from an explicitly seeded generator object
    (``np.random.default_rng(seed)``, ``random.Random(seed)``): a single
    ``np.random.rand()`` or ``random.random()`` makes results depend on
    global interpreter state and silently breaks every equality gate.
    """

    name = "unseeded-rng"
    description = (
        "no np.random.<fn> / bare random.<fn> global-state draws in "
        "snn/, kernels/, serve/, net/ or engine modules"
    )

    _NUMPY_ALLOWED = {"default_rng", "Generator", "SeedSequence", "PCG64", "Philox"}
    _STDLIB_ALLOWED = {"Random", "SystemRandom"}

    def _in_scope(self, module: ParsedModule) -> bool:
        parts = module.rel_path.split("/")
        return (
            "snn" in parts
            or "kernels" in parts
            or "serve" in parts
            or "net" in parts
            or "engine" in parts[-1]
        )

    def check_module(self, module: ParsedModule, project: Project) -> Iterable[Finding]:
        if not self._in_scope(module):
            return ()
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _dotted(node.func)
            head, _, fn = chain.rpartition(".")
            if head in ("np.random", "numpy.random") and fn not in self._NUMPY_ALLOWED:
                findings.append(
                    module.finding(
                        self.name,
                        node,
                        f"{chain}() draws from the global NumPy RNG; use a "
                        f"seeded np.random.default_rng(...) generator",
                    )
                )
            elif head == "random" and fn not in self._STDLIB_ALLOWED:
                findings.append(
                    module.finding(
                        self.name,
                        node,
                        f"{chain}() uses global random-module state; use a "
                        f"seeded random.Random(...) instance",
                    )
                )
        return findings


# --------------------------------------------------------------------------- #
# R3 — dtype discipline
# --------------------------------------------------------------------------- #
@register
class DtypeDisciplineRule(Rule):
    """Functions taking a numerics policy must not hardcode a dtype.

    A function parameterized on :class:`~repro.snn.numerics.NumericsPolicy`
    (or a ``dtype`` argument) exists so callers choose the precision; a
    literal ``np.float64``/``np.float32``/``dtype=float`` inside its body
    silently pins one branch of the policy and breaks fp32 paths in ways
    only an accuracy sweep would notice.
    """

    name = "dtype-discipline"
    description = (
        "no literal np.float64/np.float32/dtype=float in functions that "
        "take a NumericsPolicy or dtype parameter"
    )

    _PARAM_NAMES = {"policy", "numerics", "dtype"}
    _PINNED = {"np.float64", "numpy.float64", "np.float32", "numpy.float32"}

    def _takes_policy(self, func: ast.AST) -> bool:
        args = func.args
        every = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        for arg in every:
            if arg.arg in self._PARAM_NAMES:
                return True
            if arg.annotation is not None and "NumericsPolicy" in ast.dump(
                arg.annotation
            ):
                return True
        return False

    def check_module(self, module: ParsedModule, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        for func in _functions(module.tree):
            if not self._takes_policy(func):
                continue
            # Only the body: the signature legitimately states the reference
            # default (``dtype: np.dtype = np.float64``) — the invariant is
            # that the *body* derives everything from the parameter.
            for node in (n for stmt in func.body for n in ast.walk(stmt)):
                if isinstance(node, ast.Attribute) and _dotted(node) in self._PINNED:
                    findings.append(
                        module.finding(
                            self.name,
                            node,
                            f"{func.name}() takes a numerics/dtype parameter "
                            f"but hardcodes {_dotted(node)}; derive the dtype "
                            f"from the parameter",
                        )
                    )
                elif (
                    isinstance(node, ast.keyword)
                    and node.arg == "dtype"
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "float"
                ):
                    findings.append(
                        module.finding(
                            self.name,
                            node.value,
                            f"{func.name}() takes a numerics/dtype parameter "
                            f"but passes dtype=float; derive the dtype from "
                            f"the parameter",
                        )
                    )
        return findings


# --------------------------------------------------------------------------- #
# R4 — picklable sweep point functions
# --------------------------------------------------------------------------- #
@register
class UnpicklablePointRule(Rule):
    """``SweepSpec.point`` must be a module-level function.

    Process pools and shard workers pickle the point function; a lambda or
    a closure pickles on no platform and fails only when someone first runs
    the sweep with ``--backend process`` — far from where it was written.
    (``finalize=`` may stay a lambda: only ``point`` crosses processes.)
    """

    name = "unpicklable-point"
    description = (
        "SweepSpec point functions must be module-level (picklable), "
        "not lambdas or closures"
    )

    def _nested_function_names(self, tree: ast.AST) -> Set[str]:
        nested: Set[str] = set()
        for outer in _functions(tree):
            for inner in ast.walk(outer):
                if inner is not outer and isinstance(
                    inner, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    nested.add(inner.name)
        return nested

    def check_module(self, module: ParsedModule, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        nested = self._nested_function_names(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            is_spec = _dotted(node.func).rsplit(".", 1)[-1] == "SweepSpec"
            candidates: List[ast.expr] = []
            for keyword in node.keywords:
                if keyword.arg == "point":
                    candidates.append(keyword.value)
            if is_spec and len(node.args) >= 3:
                candidates.append(node.args[2])  # SweepSpec(name, space, point)
            for value in candidates:
                if isinstance(value, ast.Lambda):
                    findings.append(
                        module.finding(
                            self.name,
                            value,
                            "sweep point function is a lambda; process/shard "
                            "backends cannot pickle it — use a module-level "
                            "function",
                        )
                    )
                elif isinstance(value, ast.Name) and value.id in nested:
                    findings.append(
                        module.finding(
                            self.name,
                            value,
                            f"sweep point function {value.id!r} is defined "
                            f"inside another function (a closure); process/"
                            f"shard backends cannot pickle it",
                        )
                    )
        return findings


# --------------------------------------------------------------------------- #
# R5 — no mutation of hashed frozen arrays
# --------------------------------------------------------------------------- #
@register
class FrozenMutationRule(Rule):
    """Frozen, fingerprint-hashed arrays must never be thawed or written.

    Weight arrays are frozen (``array.flags.writeable = False``) once their
    fingerprint enters the result-store keys; re-enabling writes
    (``.flags.writeable = True``) or mutating a name bound to a network's
    ``.weights`` in place silently invalidates every cached result hashed
    from the old bytes.
    """

    name = "frozen-mutation"
    description = (
        "no .flags.writeable = True, and no in-place writes to names "
        "bound from .weights arrays"
    )

    def check_module(self, module: ParsedModule, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        _dotted(target).endswith(".flags.writeable")
                        and isinstance(node.value, ast.Constant)
                        and node.value.value is True
                    ):
                        findings.append(
                            module.finding(
                                self.name,
                                node,
                                "re-enables writes on a frozen array; its "
                                "fingerprint was hashed from the frozen bytes",
                            )
                        )
        for func in _functions(module.tree):
            frozen: Set[str] = set()
            for node in ast.walk(func):
                if isinstance(node, ast.Assign):
                    if (
                        len(node.targets) == 1
                        and isinstance(node.targets[0], ast.Name)
                        and isinstance(node.value, ast.Attribute)
                        and node.value.attr == "weights"
                    ):
                        frozen.add(node.targets[0].id)
                        continue
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Subscript)
                            and isinstance(target.value, ast.Name)
                            and target.value.id in frozen
                        ):
                            findings.append(
                                module.finding(
                                    self.name,
                                    node,
                                    f"element write to {target.value.id!r}, "
                                    f"bound from a .weights array that may be "
                                    f"frozen and fingerprint-hashed; copy it "
                                    f"first",
                                )
                            )
                elif isinstance(node, ast.AugAssign):
                    name = node.target.id if isinstance(node.target, ast.Name) else None
                    if name in frozen:
                        findings.append(
                            module.finding(
                                self.name,
                                node,
                                f"in-place write to {name!r}, bound from a "
                                f".weights array that may be frozen and "
                                f"fingerprint-hashed; copy it first",
                            )
                        )
        return findings


# --------------------------------------------------------------------------- #
# R6 — registry/doc consistency
# --------------------------------------------------------------------------- #
@register
class RegistryDocsRule(Rule):
    """Every registered scenario/sweep name stays documented.

    Names enter the registries via ``add("name", kind, figure, description,
    ...)`` inside ``_build_scenarios`` and via
    ``register_sweep(SweepSpec(name=..., description=...))``.  Each must
    appear in ``README.md`` (users discover scenarios there) and carry a
    non-empty description (``Session.describe`` and ``--list-scenarios``
    render it).
    """

    name = "registry-docs"
    description = (
        "registered scenario/sweep names must appear in README.md and "
        "carry a non-empty description"
    )

    def _registrations(
        self, module: ParsedModule
    ) -> Iterator[Tuple[str, int, bool]]:
        """Yield (name, line, has_description) per registration call."""
        builders = [
            func
            for func in _functions(module.tree)
            if func.name == "_build_scenarios"
        ]
        for builder in builders:
            for node in ast.walk(builder):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "add"
                    and node.args
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)
                ):
                    described = (
                        len(node.args) > 3
                        and isinstance(node.args[3], ast.Constant)
                        and bool(node.args[3].value)
                    )
                    yield node.args[0].value, node.lineno, described
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and _dotted(node.func).rsplit(".", 1)[-1] == "register_sweep"
                and node.args
                and isinstance(node.args[0], ast.Call)
                and _dotted(node.args[0].func).rsplit(".", 1)[-1] == "SweepSpec"
            ):
                continue
            spec = node.args[0]
            name = described = None
            for keyword in spec.keywords:
                if keyword.arg == "name" and isinstance(keyword.value, ast.Constant):
                    name = keyword.value.value
                if keyword.arg == "description":
                    described = bool(
                        not isinstance(keyword.value, ast.Constant)
                        or keyword.value.value
                    )
            if isinstance(name, str):
                yield name, node.lineno, bool(described)

    def check_project(self, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        for module in project.modules:
            for name, line, described in self._registrations(module):
                if name not in project.readme:
                    findings.append(
                        module.finding(
                            self.name,
                            line,
                            f"registered name {name!r} is not documented in "
                            f"README.md",
                        )
                    )
                if not described:
                    findings.append(
                        module.finding(
                            self.name,
                            line,
                            f"registered name {name!r} has no description; "
                            f"describe()/--list-scenarios would render it "
                            f"blank",
                        )
                    )
        return findings


# --------------------------------------------------------------------------- #
# R7 — mutable default arguments
# --------------------------------------------------------------------------- #
@register
class MutableDefaultRule(Rule):
    """No mutable default argument values.

    A ``def f(rows=[])`` default is created once and shared by every call;
    the first caller that appends poisons all later calls.  Sweeps and
    scenarios pass row lists and parameter dicts around constantly, so this
    classic stays registered rather than remembered.
    """

    name = "mutable-default"
    description = "no list/dict/set literals (or constructors) as argument defaults"

    _CONSTRUCTORS = {"list", "dict", "set", "bytearray", "defaultdict", "OrderedDict"}

    def _is_mutable(self, default: ast.expr) -> bool:
        if isinstance(default, (ast.List, ast.Dict, ast.Set)):
            return True
        return (
            isinstance(default, ast.Call)
            and _dotted(default.func).rsplit(".", 1)[-1] in self._CONSTRUCTORS
        )

    def check_module(self, module: ParsedModule, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        for func in _functions(module.tree):
            defaults = list(func.args.defaults) + [
                default for default in func.args.kw_defaults if default is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    findings.append(
                        module.finding(
                            self.name,
                            default,
                            f"{func.name}() has a mutable default argument; "
                            f"use None and create it inside the function",
                        )
                    )
        return findings


# --------------------------------------------------------------------------- #
# R8 — __all__ matches what the module actually binds
# --------------------------------------------------------------------------- #
@register
class AllExportsRule(Rule):
    """``__all__`` and the module's bindings must agree.

    Two directions: every ``__all__`` name must be bound at module level
    (or resolvable through a module ``__getattr__`` — a name counts as
    dynamically resolvable when the module defines ``__getattr__`` and the
    name appears as a string literal, e.g. in a lazy-export tuple), and
    every public ``def``/``class`` written directly in a package
    ``__init__.py`` must appear in ``__all__`` (otherwise ``import *`` and
    the documented surface silently diverge).
    """

    name = "all-exports"
    description = (
        "__all__ names must be bound (or lazily resolvable) and public "
        "__init__ definitions must be exported"
    )

    def _assigned_names(self, target: ast.expr) -> Iterator[str]:
        if isinstance(target, ast.Name):
            yield target.id
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                yield from self._assigned_names(element)

    def check_module(self, module: ParsedModule, project: Project) -> Iterable[Finding]:
        all_node: Optional[ast.Assign] = None
        bound: Set[str] = set()
        has_getattr = False
        star_import = False
        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                bound.add(stmt.name)
                if stmt.name == "__getattr__":
                    has_getattr = True
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    for name in self._assigned_names(target):
                        bound.add(name)
                        if name == "__all__":
                            all_node = stmt
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                bound.add(stmt.target.id)
            elif isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    bound.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(stmt, ast.ImportFrom):
                for alias in stmt.names:
                    if alias.name == "*":
                        star_import = True
                    else:
                        bound.add(alias.asname or alias.name)
        if all_node is None or star_import:
            return ()
        if not isinstance(all_node.value, (ast.List, ast.Tuple)):
            return ()
        exported = [
            element.value
            for element in all_node.value.elts
            if isinstance(element, ast.Constant) and isinstance(element.value, str)
        ]
        dynamic: Set[str] = set()
        if has_getattr:
            dynamic = {
                node.value
                for node in ast.walk(module.tree)
                if isinstance(node, ast.Constant) and isinstance(node.value, str)
            }
        findings: List[Finding] = []
        for name in exported:
            if name not in bound and name not in dynamic:
                findings.append(
                    module.finding(
                        self.name,
                        all_node,
                        f"__all__ exports {name!r} but the module never binds "
                        f"it (no matching def/class/import/assignment, and no "
                        f"__getattr__ naming it)",
                    )
                )
        if module.path.name == "__init__.py":
            for stmt in module.tree.body:
                if (
                    isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
                    and not stmt.name.startswith("_")
                    and stmt.name not in exported
                ):
                    findings.append(
                        module.finding(
                            self.name,
                            stmt,
                            f"public {stmt.name!r} is defined in this package "
                            f"__init__ but missing from __all__",
                        )
                    )
        return findings


# --------------------------------------------------------------------------- #
# R9 — socket discipline
# --------------------------------------------------------------------------- #
@register
class SocketDisciplineRule(Rule):
    """Every socket the code opens must have a deterministic close path.

    The distributed tier (:mod:`repro.net`) holds listener and connection
    sockets across threads; a file descriptor that only closes when the
    garbage collector feels like it keeps ports bound between tests and
    masks shutdown bugs.  Any call that *creates* a socket
    (``socket.socket``, ``socket.create_server``,
    ``socket.create_connection``, ``socket.socketpair``) must either be
    the context expression of a ``with`` statement, or — when bound to a
    name — be closed on every path: a local name needs ``name.close()``
    inside a ``finally`` (or ``except``) block of the same function; a
    ``self.<attr>`` binding needs ``self.<attr>.close()`` in a teardown
    method (``close``/``stop``/``shutdown``/``__exit__``/``__del__``) or
    a ``finally``/``except`` block somewhere in the owning class.

    Sockets returned by ``accept()`` are deliberately not tracked: the
    accept loop hands them to a wrapper (e.g.
    :class:`~repro.net.framing.FramedConnection`) that owns the close,
    and *that* wrapper's own socket field is what this rule watches.

    The rule also polices **partial-I/O discipline** on the scatter-gather
    calls wire protocol v2 leans on: ``sendmsg``, ``recv_into`` and
    ``recvmsg_into`` all report how many bytes actually moved, and a call
    whose count is discarded (a bare expression statement) silently drops
    the tail of a frame under load — the worst kind of wire bug, invisible
    until buffers fill.  Their return value must be consumed.
    """

    name = "socket-discipline"
    description = (
        "sockets must be closed via context manager or close() on a "
        "finally/teardown path; sendmsg/recv_into/recvmsg_into byte counts "
        "must be consumed"
    )

    _CREATORS = {"create_connection", "create_server", "socketpair"}
    _TEARDOWN_METHODS = {"close", "stop", "shutdown", "__exit__", "__del__"}
    #: Socket calls that report a transferred-byte count the caller must
    #: check — partial completion is normal, not exceptional, for these.
    _PARTIAL_IO = {"sendmsg", "recv_into", "recvmsg_into"}

    def _is_creator(self, node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        chain = _dotted(node.func)
        head, _, fn = chain.rpartition(".")
        if fn in self._CREATORS:
            return True
        return fn == "socket" and head.rsplit(".", 1)[-1] == "socket"

    def _record_target(
        self,
        target: ast.expr,
        lineno: int,
        local_out: List[Tuple[str, int]],
        self_out: List[Tuple[str, int]],
    ) -> None:
        if isinstance(target, ast.Name):
            local_out.append((target.id, lineno))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_target(element, lineno, local_out, self_out)
        else:
            attr = _self_attr(target)
            if attr is not None:
                self_out.append((attr, lineno))

    def _collect_creations(
        self,
        body: Iterable[ast.stmt],
        local_out: List[Tuple[str, int]],
        self_out: List[Tuple[str, int]],
    ) -> None:
        """Record every name a socket-creating call is bound to."""
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # nested definitions are analyzed on their own
            if isinstance(stmt, ast.Assign) and self._is_creator(stmt.value):
                for target in stmt.targets:
                    self._record_target(target, stmt.lineno, local_out, self_out)
            elif (
                isinstance(stmt, ast.AnnAssign)
                and stmt.value is not None
                and self._is_creator(stmt.value)
            ):
                self._record_target(stmt.target, stmt.lineno, local_out, self_out)
            for field in ("body", "orelse", "finalbody", "handlers"):
                children = getattr(stmt, field, None)
                if children:
                    blocks = [
                        child.body if isinstance(child, ast.ExceptHandler) else [child]
                        for child in children
                    ]
                    for block in blocks:
                        self._collect_creations(block, local_out, self_out)

    def _scan_closes(
        self, node: ast.AST, local_out: Set[str], self_out: Set[str]
    ) -> None:
        for call in ast.walk(node):
            if (
                isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)
                and call.func.attr == "close"
            ):
                owner = call.func.value
                if isinstance(owner, ast.Name):
                    local_out.add(owner.id)
                else:
                    attr = _self_attr(owner)
                    if attr is not None:
                        self_out.add(attr)

    def _record_closes(
        self,
        body: Iterable[ast.stmt],
        in_cleanup: bool,
        local_out: Set[str],
        self_out: Set[str],
    ) -> None:
        """Record names ``.close()``d on a cleanup (finally/except) path."""
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if in_cleanup:
                # Everything nested under a finally/except counts.
                self._scan_closes(stmt, local_out, self_out)
                continue
            if isinstance(stmt, ast.Try):
                self._record_closes(stmt.body, False, local_out, self_out)
                self._record_closes(stmt.orelse, False, local_out, self_out)
                for handler in stmt.handlers:
                    self._record_closes(handler.body, True, local_out, self_out)
                self._record_closes(stmt.finalbody, True, local_out, self_out)
                continue
            for field in ("body", "orelse"):
                children = getattr(stmt, field, None)
                if children:
                    self._record_closes(children, False, local_out, self_out)

    def check_module(self, module: ParsedModule, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        for fn in _functions(module.tree):
            findings.extend(self._check_function(module, fn))
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(module, node))
        # Module-level sockets never have a per-call teardown path.
        local_new: List[Tuple[str, int]] = []
        self_new: List[Tuple[str, int]] = []
        self._collect_creations(module.tree.body, local_new, self_new)
        closed: Set[str] = set()
        self._record_closes(module.tree.body, False, closed, set())
        for name, lineno in local_new:
            if name not in closed:
                findings.append(
                    module.finding(
                        self.name,
                        lineno,
                        f"module-level socket {name!r} is never closed on a "
                        f"finally path; open it in a `with` block instead",
                    )
                )
        findings.extend(self._check_partial_io(module))
        return findings

    def _check_partial_io(self, module: ParsedModule) -> Iterator[Finding]:
        """Flag scatter-gather calls whose byte count is thrown away."""
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Expr):
                continue
            call = node.value
            if (
                isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)
                and call.func.attr in self._PARTIAL_IO
            ):
                yield module.finding(
                    self.name,
                    node.lineno,
                    f"{call.func.attr}() returns the bytes actually "
                    f"transferred; discarding it loses partial "
                    f"{'writes' if call.func.attr == 'sendmsg' else 'reads'} "
                    f"— assign and check the count",
                )

    def _check_function(
        self, module: ParsedModule, fn: ast.AST
    ) -> Iterator[Finding]:
        local_new: List[Tuple[str, int]] = []
        self_new: List[Tuple[str, int]] = []  # handled by the class pass
        self._collect_creations(fn.body, local_new, self_new)
        if not local_new:
            return
        closed: Set[str] = set()
        self._record_closes(fn.body, False, closed, set())
        for name, lineno in local_new:
            if name not in closed:
                yield module.finding(
                    self.name,
                    lineno,
                    f"socket bound to {name!r} in {fn.name}() has no "
                    f"{name}.close() on a finally path; use `with` or close "
                    f"it in a finally block",
                )

    def _check_class(
        self, module: ParsedModule, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        created: List[Tuple[str, int, str]] = []
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            local_new: List[Tuple[str, int]] = []
            self_new: List[Tuple[str, int]] = []
            self._collect_creations(method.body, local_new, self_new)
            created.extend((attr, lineno, method.name) for attr, lineno in self_new)
        if not created:
            return
        torn_down: Set[str] = set()
        scratch: Set[str] = set()
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            self._record_closes(
                method.body,
                method.name in self._TEARDOWN_METHODS,
                scratch,
                torn_down,
            )
        for attr, lineno, method_name in created:
            if attr not in torn_down:
                yield module.finding(
                    self.name,
                    lineno,
                    f"socket stored on self.{attr} in {cls.name}."
                    f"{method_name}() is never self.{attr}.close()d in a "
                    f"teardown method (close/stop/shutdown/__exit__/__del__) "
                    f"or finally block",
                )


# --------------------------------------------------------------------------- #
# R10 — trace spans are opened as context managers
# --------------------------------------------------------------------------- #
@register
class SpanDisciplineRule(Rule):
    """Trace spans must be opened via ``with tracer.span(...)``.

    A span opened as a bare call and closed by hand (``span = tracer.span``
    then ``start()``/``finish()`` pairs) leaks open the moment any path
    between the two raises or returns early — and an unfinished span keeps
    its whole trace from ever completing, silently hollowing out the
    observability the tracer exists to provide.  The ``with`` form closes
    the span on every exit path, including exceptions (which also mark the
    span's status).

    Two findings: a ``*tracer*.span(...)`` call that is not the context
    expression of a ``with`` statement, and any ``start()``/``finish()``
    call on a name bound from such a call.  Intervals whose open and close
    genuinely live on different threads (the request root span, the
    coordinator's dispatch span) use the explicitly-named
    :meth:`~repro.obs.Tracer.open_span` escape hatch, which this rule
    deliberately does not police.
    """

    name = "span-discipline"
    description = (
        "tracer.span(...) must be a `with` context expression; no bare "
        "start()/finish() pairs on span objects"
    )

    def _is_span_call(self, node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "span"
            and "tracer" in _dotted(node.func.value).lower()
        )

    def check_module(self, module: ParsedModule, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        with_exprs: Set[int] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    with_exprs.add(id(item.context_expr))
        span_names: Set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign) and self._is_span_call(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        span_names.add(target.id)
            if self._is_span_call(node) and id(node) not in with_exprs:
                findings.append(
                    module.finding(
                        self.name,
                        node,
                        "span opened outside a `with` statement; bare spans "
                        "leak open on any early exit — use "
                        "`with tracer.span(...):`",
                    )
                )
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("start", "finish")
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in span_names
            ):
                findings.append(
                    module.finding(
                        self.name,
                        node,
                        f"bare {node.func.attr}() on span "
                        f"{node.func.value.id!r}; the `with` block owns the "
                        f"span lifecycle",
                    )
                )
        return findings
