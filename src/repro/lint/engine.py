"""Pluggable AST rule engine enforcing the repository's own invariants.

The codebase carries invariants no general-purpose linter knows about:
lock-guarded attributes must stay guarded everywhere (``repro.serve``,
:class:`~repro.session.ResultStore`), golden-model code must never draw
from unseeded global RNGs (bit-for-bit killers), :class:`SweepSpec` point
functions must stay picklable, and registered scenario/sweep names must
stay documented.  Following the figure-registry idiom (one dict mapping
names to checkers), every invariant is a :class:`Rule` in the
:data:`RULES` registry; :func:`check_project` parses each source file once
and dispatches every rule over the shared :class:`ParsedModule` objects.

Suppressions are per-line comments::

    risky_call()  # lint: disable=unseeded-rng

A suppression that suppresses nothing is itself a finding
(:data:`UNUSED_SUPPRESSION`) when the full rule set runs, so stale
suppressions cannot accumulate; ``repro.cli check --fix-suppressions``
(:func:`fix_suppressions`) rewrites them away.

Entry points: ``python -m repro.cli check`` and ``tools/check.py`` (the
smoke step); the runtime companion is :mod:`repro.lint.locktrace`.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "CheckResult",
    "DEFAULT_PATHS",
    "Finding",
    "ParsedModule",
    "Project",
    "REPO_ROOT",
    "RULES",
    "Rule",
    "UNUSED_SUPPRESSION",
    "check_project",
    "fix_suppressions",
    "load_project",
    "register",
]

#: The repository root this engine was checked out under (engine.py lives at
#: ``src/repro/lint/engine.py``).  ``check_project`` lints it by default.
REPO_ROOT = Path(__file__).resolve().parents[3]

#: Directories (and files) linted by default, relative to the project root.
#: Tests are deliberately excluded: ``tests/lint/fixtures/`` *seeds* one
#: violation per rule, and test code legitimately reaches into private
#: state the rules would misread.
DEFAULT_PATHS: Tuple[str, ...] = ("src", "tools", "benchmarks", "examples", "setup.py")

#: Rule name of the engine's own check: a suppression that suppressed nothing.
UNUSED_SUPPRESSION = "unused-suppression"

_SUPPRESS_RE = re.compile(r"#\s*lint:\s*disable=([A-Za-z0-9_,\- ]+)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source line."""

    rule: str
    path: str  #: project-relative POSIX path
    line: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }

    @property
    def sort_key(self) -> Tuple[str, int, str]:
        return (self.path, self.line, self.rule)


class ParsedModule:
    """One source file, parsed once and shared by every rule.

    Exposes the AST (``tree``), the raw ``source``, the project-relative
    ``rel_path`` and the per-line suppression map parsed from
    ``# lint: disable=<rule>[,<rule>...]`` comments.
    """

    def __init__(self, path: Path, root: Path):
        self.path = path
        self.rel_path = path.relative_to(root).as_posix()
        self.source = path.read_text()
        self.tree = ast.parse(self.source, filename=str(path))
        # Suppressions come from real COMMENT tokens only, so a docstring
        # *describing* the syntax can never register as a suppression.
        self.suppressions: Dict[int, Set[str]] = {}
        for token in tokenize.generate_tokens(io.StringIO(self.source).readline):
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if match:
                rules = {part.strip() for part in match.group(1).split(",")}
                self.suppressions[token.start[0]] = {rule for rule in rules if rule}

    def finding(self, rule: str, node: object, message: str) -> Finding:
        """A :class:`Finding` anchored at ``node`` (an AST node or a line)."""
        line = node if isinstance(node, int) else getattr(node, "lineno", 0)
        return Finding(rule=rule, path=self.rel_path, line=line, message=message)


class Project:
    """Every parsed module of one project root, plus its documentation."""

    def __init__(self, root: Path, modules: Sequence[ParsedModule]):
        self.root = Path(root)
        self.modules = list(modules)
        self.by_path: Dict[str, ParsedModule] = {
            module.rel_path: module for module in self.modules
        }
        self._readme: Optional[str] = None

    @property
    def readme(self) -> str:
        """``README.md`` at the project root ('' when absent)."""
        if self._readme is None:
            path = self.root / "README.md"
            self._readme = path.read_text() if path.exists() else ""
        return self._readme


class Rule(ABC):
    """One named invariant; subclasses register via :func:`register`.

    A rule implements :meth:`check_module` (called once per parsed file)
    and/or :meth:`check_project` (called once with the whole project, for
    cross-file invariants such as registry/README consistency).
    """

    @property
    @abstractmethod
    def name(self) -> str:
        """Registry key; also the token suppression comments name."""

    @property
    @abstractmethod
    def description(self) -> str:
        """One-line summary shown by ``repro.cli check`` and the docs."""

    def check_module(self, module: ParsedModule, project: Project) -> Iterable[Finding]:
        return ()

    def check_project(self, project: Project) -> Iterable[Finding]:
        return ()


#: The rule registry: rule name -> rule instance (one registry dict mapping
#: names to checkers, mirroring the scenario/figure registries).
RULES: Dict[str, Rule] = {}


def register(rule_cls: type) -> type:
    """Class decorator instantiating a :class:`Rule` into :data:`RULES`."""
    rule = rule_cls()
    if rule.name in RULES:
        raise ValueError(f"duplicate lint rule name {rule.name!r}")
    RULES[rule.name] = rule
    return rule_cls


_SKIP_DIRS = {"__pycache__", ".git", ".pytest_cache", "node_modules"}


def iter_source_files(root: Path, paths: Optional[Sequence[str]] = None) -> Iterator[Path]:
    """Every ``.py`` file under ``paths`` (relative to ``root``), sorted."""
    seen: Set[Path] = set()
    for entry in paths if paths is not None else DEFAULT_PATHS:
        base = root / entry
        if base.is_file() and base.suffix == ".py":
            seen.add(base)
            continue
        if not base.is_dir():
            continue
        for path in base.rglob("*.py"):
            if not _SKIP_DIRS.intersection(path.relative_to(root).parts):
                seen.add(path)
    yield from sorted(seen)


def load_project(
    root: Path = REPO_ROOT, paths: Optional[Sequence[str]] = None
) -> Project:
    """Parse every source file once into a :class:`Project`.

    A file with a syntax error becomes a hard failure (``SyntaxError``
    propagates): an unparseable file can hide any violation.
    """
    modules = [ParsedModule(path, root) for path in iter_source_files(root, paths)]
    return Project(root, modules)


@dataclass
class CheckResult:
    """Outcome of one :func:`check_project` run."""

    findings: List[Finding]  #: after suppression, sorted; includes unused-suppression
    files: int
    rules: Tuple[str, ...]
    suppressed: int
    #: unused suppressions as (rel_path, line, rule) triples — the exact
    #: edits :func:`fix_suppressions` applies
    unused: List[Tuple[str, int, str]]

    @property
    def passed(self) -> bool:
        return not self.findings


def _is_suppressed(module: Optional[ParsedModule], finding: Finding) -> bool:
    if module is None:
        return False
    rules = module.suppressions.get(finding.line, ())
    return finding.rule in rules or "all" in rules


def check_project(
    root: Path = REPO_ROOT,
    rule_names: Optional[Sequence[str]] = None,
    paths: Optional[Sequence[str]] = None,
    project: Optional[Project] = None,
) -> CheckResult:
    """Run rules over a project and apply suppressions.

    ``rule_names`` restricts the run (unknown names raise ``KeyError``);
    the unused-suppression check only runs on a *full* rule run, because a
    suppression for a rule that was not executed is not evidence of
    staleness.
    """
    if project is None:
        project = load_project(root, paths)
    if rule_names:
        unknown = [name for name in rule_names if name not in RULES]
        if unknown:
            raise KeyError(
                f"unknown lint rule(s) {unknown}; registered: {sorted(RULES)}"
            )
        rules = [RULES[name] for name in rule_names]
    else:
        rules = [RULES[name] for name in sorted(RULES)]

    raw: List[Finding] = []
    for rule in rules:
        for module in project.modules:
            raw.extend(rule.check_module(module, project))
        raw.extend(rule.check_project(project))

    findings: List[Finding] = []
    suppressed = 0
    used: Set[Tuple[str, int, str]] = set()
    for finding in raw:
        module = project.by_path.get(finding.path)
        if _is_suppressed(module, finding):
            suppressed += 1
            rules_here = module.suppressions[finding.line]
            token = finding.rule if finding.rule in rules_here else "all"
            used.add((finding.path, finding.line, token))
        else:
            findings.append(finding)

    unused: List[Tuple[str, int, str]] = []
    if not rule_names:  # full run: every suppression had its chance to fire
        for module in project.modules:
            for line, tokens in sorted(module.suppressions.items()):
                for token in sorted(tokens):
                    if (module.rel_path, line, token) in used:
                        continue
                    unused.append((module.rel_path, line, token))
                    detail = (
                        "suppresses an unregistered rule"
                        if token not in RULES and token != "all"
                        else "suppresses nothing"
                    )
                    findings.append(
                        Finding(
                            rule=UNUSED_SUPPRESSION,
                            path=module.rel_path,
                            line=line,
                            message=(
                                f"'# lint: disable={token}' {detail}; remove it "
                                f"(or run check --fix-suppressions)"
                            ),
                        )
                    )

    findings.sort(key=lambda finding: finding.sort_key)
    return CheckResult(
        findings=findings,
        files=len(project.modules),
        rules=tuple(rule.name for rule in rules),
        suppressed=suppressed,
        unused=unused,
    )


def _strip_suppression(line: str, tokens: Set[str]) -> str:
    """``line`` with ``tokens`` removed from its suppression comment.

    Removing the last token removes the whole ``# lint: disable=`` comment
    (trailing whitespace included); other trailing comments are preserved.
    """
    match = _SUPPRESS_RE.search(line)
    if not match:
        return line
    kept = [
        part.strip()
        for part in match.group(1).split(",")
        if part.strip() and part.strip() not in tokens
    ]
    if kept:
        replacement = f"# lint: disable={','.join(kept)}"
        return line[: match.start()] + replacement + line[match.end():]
    return (line[: match.start()] + line[match.end():]).rstrip()


def fix_suppressions(
    root: Path, unused: Sequence[Tuple[str, int, str]]
) -> List[Path]:
    """Rewrite files removing the given unused suppressions; returns paths."""
    by_file: Dict[str, Dict[int, Set[str]]] = {}
    for rel_path, line, token in unused:
        by_file.setdefault(rel_path, {}).setdefault(line, set()).add(token)
    changed: List[Path] = []
    for rel_path, lines in sorted(by_file.items()):
        path = root / rel_path
        original = path.read_text()
        ends_with_newline = original.endswith("\n")
        source = original.splitlines()
        for lineno, tokens in lines.items():
            if 1 <= lineno <= len(source):
                source[lineno - 1] = _strip_suppression(source[lineno - 1], tokens)
        rewritten = "\n".join(source) + ("\n" if ends_with_newline else "")
        if rewritten != original:
            path.write_text(rewritten)
            changed.append(path)
    return changed
