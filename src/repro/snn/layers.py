"""Spiking network layers.

Layers are lightweight containers for weights, geometry and neuron parameters.
The functional forward pass lives in :mod:`repro.snn.reference` (golden model)
and :mod:`repro.kernels` (cluster kernels); layer objects expose the metadata
both need: shapes, weight tensors in the batched-HWC layout, and whether the
layer performs spike encoding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from ..types import LayerKind, TensorShape
from ..utils.rng import SeedLike, make_rng
from .neuron import LIFParameters
from .reference import conv_output_size


@dataclass
class SpikingConv2d:
    """A spiking 2-D convolutional layer with LIF activation.

    Weights are stored as ``(kh, kw, C_in, C_out)``, which flattens to the
    batched HWC layout used by the cluster kernels (weights of consecutive
    output channels are contiguous so that SIMD lanes can be filled directly).
    """

    in_channels: int
    out_channels: int
    kernel_size: int = 3
    stride: int = 1
    padding: int = 1
    lif: LIFParameters = field(default_factory=LIFParameters)
    encodes_input: bool = False
    name: str = "conv"
    weights: Optional[np.ndarray] = None

    kind: LayerKind = field(default=LayerKind.CONV, init=False)

    def __post_init__(self) -> None:
        for attr in ("in_channels", "out_channels", "kernel_size", "stride"):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be positive, got {getattr(self, attr)}")
        if self.padding < 0:
            raise ValueError(f"padding must be non-negative, got {self.padding}")
        expected = self.weight_shape
        if self.weights is not None:
            self.weights = np.asarray(self.weights, dtype=np.float64)
            if self.weights.shape != expected:
                raise ValueError(
                    f"weights have shape {self.weights.shape}, expected {expected}"
                )

    @property
    def weight_shape(self) -> Tuple[int, int, int, int]:
        """Shape of the filter bank ``(kh, kw, C_in, C_out)``."""
        return (self.kernel_size, self.kernel_size, self.in_channels, self.out_channels)

    @property
    def num_weights(self) -> int:
        """Number of weight elements."""
        return int(np.prod(self.weight_shape))

    def initialize(self, rng: SeedLike = None, scale: Optional[float] = None) -> None:
        """Randomly initialize the weights (He-style scaling by fan-in)."""
        rng = make_rng(rng)
        fan_in = self.kernel_size * self.kernel_size * self.in_channels
        scale = scale if scale is not None else np.sqrt(2.0 / fan_in)
        self.weights = rng.normal(0.0, scale, size=self.weight_shape)

    def output_shape(self, input_shape: TensorShape) -> TensorShape:
        """Shape of the output spike map for a given input shape."""
        if input_shape.channels != self.in_channels:
            raise ValueError(
                f"layer {self.name!r} expects {self.in_channels} input channels, "
                f"got {input_shape.channels}"
            )
        out_h = conv_output_size(input_shape.height, self.kernel_size, self.stride, self.padding)
        out_w = conv_output_size(input_shape.width, self.kernel_size, self.stride, self.padding)
        return TensorShape(out_h, out_w, self.out_channels)

    def padded_input_shape(self, input_shape: TensorShape) -> TensorShape:
        """Shape of the zero-padded ifmap actually held in memory."""
        return TensorShape(
            input_shape.height + 2 * self.padding,
            input_shape.width + 2 * self.padding,
            input_shape.channels,
        )

    def require_weights(self) -> np.ndarray:
        """Return the weight tensor, raising if the layer is uninitialized."""
        if self.weights is None:
            raise RuntimeError(f"layer {self.name!r} has no weights; call initialize() first")
        return self.weights


@dataclass
class SpikingLinear:
    """A spiking fully connected layer with LIF activation.

    Weights are stored as ``(in_features, out_features)`` so that the weights
    of consecutive output neurons are contiguous (SIMD batched layout).
    """

    in_features: int
    out_features: int
    lif: LIFParameters = field(default_factory=LIFParameters)
    is_output: bool = False
    name: str = "fc"
    weights: Optional[np.ndarray] = None

    kind: LayerKind = field(default=LayerKind.LINEAR, init=False)

    def __post_init__(self) -> None:
        for attr in ("in_features", "out_features"):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be positive, got {getattr(self, attr)}")
        if self.weights is not None:
            self.weights = np.asarray(self.weights, dtype=np.float64)
            if self.weights.shape != (self.in_features, self.out_features):
                raise ValueError(
                    f"weights have shape {self.weights.shape}, expected "
                    f"{(self.in_features, self.out_features)}"
                )

    @property
    def num_weights(self) -> int:
        """Number of weight elements."""
        return self.in_features * self.out_features

    def initialize(self, rng: SeedLike = None, scale: Optional[float] = None) -> None:
        """Randomly initialize the weights (He-style scaling by fan-in)."""
        rng = make_rng(rng)
        scale = scale if scale is not None else np.sqrt(2.0 / self.in_features)
        self.weights = rng.normal(0.0, scale, size=(self.in_features, self.out_features))

    def output_shape(self, input_shape: TensorShape) -> TensorShape:
        """Shape of the output (a 1x1 spatial map with ``out_features`` channels)."""
        if input_shape.numel != self.in_features:
            raise ValueError(
                f"layer {self.name!r} expects {self.in_features} input features, "
                f"got {input_shape.numel}"
            )
        return TensorShape(1, 1, self.out_features)

    def require_weights(self) -> np.ndarray:
        """Return the weight tensor, raising if the layer is uninitialized."""
        if self.weights is None:
            raise RuntimeError(f"layer {self.name!r} has no weights; call initialize() first")
        return self.weights


@dataclass
class SpikingMaxPool2d:
    """Spatial max pooling of spike maps (logical OR over the window)."""

    kernel_size: int = 2
    stride: int = 2
    name: str = "maxpool"

    kind: LayerKind = field(default=LayerKind.MAXPOOL, init=False)

    def __post_init__(self) -> None:
        if self.kernel_size <= 0 or self.stride <= 0:
            raise ValueError("kernel_size and stride must be positive")

    def output_shape(self, input_shape: TensorShape) -> TensorShape:
        """Shape of the pooled output."""
        out_h = (input_shape.height - self.kernel_size) // self.stride + 1
        out_w = (input_shape.width - self.kernel_size) // self.stride + 1
        if out_h <= 0 or out_w <= 0:
            raise ValueError(f"pooling {self.name!r} produces empty output for {input_shape}")
        return TensorShape(out_h, out_w, input_shape.channels)


@dataclass
class SpikingAvgPool2d:
    """Spatial average pooling (used only by non-spiking readouts)."""

    kernel_size: int = 2
    stride: int = 2
    name: str = "avgpool"

    kind: LayerKind = field(default=LayerKind.AVGPOOL, init=False)

    def __post_init__(self) -> None:
        if self.kernel_size <= 0 or self.stride <= 0:
            raise ValueError("kernel_size and stride must be positive")

    def output_shape(self, input_shape: TensorShape) -> TensorShape:
        """Shape of the pooled output."""
        out_h = (input_shape.height - self.kernel_size) // self.stride + 1
        out_w = (input_shape.width - self.kernel_size) // self.stride + 1
        if out_h <= 0 or out_w <= 0:
            raise ValueError(f"pooling {self.name!r} produces empty output for {input_shape}")
        return TensorShape(out_h, out_w, input_shape.channels)


@dataclass
class Flatten:
    """Flatten an HWC spike map into a 1-D vector feeding the FC layers."""

    name: str = "flatten"
    kind: LayerKind = field(default=LayerKind.FLATTEN, init=False)

    def output_shape(self, input_shape: TensorShape) -> TensorShape:
        """Shape of the flattened output."""
        return TensorShape(1, 1, input_shape.numel)
