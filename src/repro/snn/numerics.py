"""Numerics policy of the golden functional model.

The golden model historically had exactly one numerical identity: FP64
dense im2row GEMMs, bit-for-bit reproducible, used both as the correctness
reference for the cluster kernels and as the functional engine behind
``repro.serve``.  That exactness is worth keeping — but it makes every
functional request pay ~full dense FP64 BLAS cost even though the paper's
core observation is that spike activations are mostly zeros.

:class:`NumericsPolicy` makes the trade-off explicit and selectable:

* ``precision`` — ``"fp64"`` (the bit-for-bit reference) or ``"fp32"``
  (half the bytes through every GEMM, im2row buffer and membrane array);
* ``forward_path`` — ``"dense"`` (im2row GEMM over the full spike map) or
  ``"event_sparse"`` (gather only the *active* input rows before the GEMM,
  the software analogue of the paper's sparse vector-product streaming, so
  arithmetic cost scales with nnz instead of dense size).

The default policy (:data:`REFERENCE`, ``fp64-dense``) is what every
existing caller gets when it passes ``policy=None`` anywhere: all
bit-for-bit equality gates of the batched engines are unchanged by
construction.  Non-reference policies trade exactness for speed inside the
accuracy bound documented in :data:`CLASSIFICATION_AGREEMENT_BOUND` /
:data:`SPIKE_COUNT_TOLERANCE` (gated by ``tests/core/test_precision_paths.py``
and measured by ``benchmarks/bench_precision.py``).

The policy is part of a run's identity: :meth:`Session.functional_fingerprint
<repro.session.Session.functional_fingerprint>` hashes :meth:`NumericsPolicy.key`
into every functional store key, so fp32 results can never be served where
fp64 results were requested (or vice versa).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = [
    "CLASSIFICATION_AGREEMENT_BOUND",
    "FORWARD_PATHS",
    "NumericsPolicy",
    "PRECISIONS",
    "REFERENCE",
    "SPIKE_COUNT_TOLERANCE",
    "resolve",
]

PRECISIONS: Tuple[str, ...] = ("fp64", "fp32")
"""Accepted ``precision`` values (golden-model dtype, not the hardware
cost-model :class:`~repro.types.Precision`)."""

FORWARD_PATHS: Tuple[str, ...] = ("dense", "event_sparse")
"""Accepted ``forward_path`` values."""

_DTYPES: Dict[str, np.dtype] = {
    "fp64": np.dtype(np.float64),
    "fp32": np.dtype(np.float32),
}

#: Documented accuracy bound of the non-reference policies versus the FP64
#: dense reference: fraction of frames whose predicted class matches the
#: reference prediction on the paper's S-VGG11 shapes.
CLASSIFICATION_AGREEMENT_BOUND: float = 0.99

#: Documented accuracy bound on per-layer spike counts: the maximum absolute
#: deviation of any layer's total spike count under a non-reference policy,
#: as a fraction of that layer's FP64 dense reference spike count (floor 1).
#: FP32 only reorders/rounds the membrane current in the last ulps, so
#: spikes flip only at near-threshold coincidences; the bound is
#: deliberately loose versus the near-zero deviations measured in practice.
SPIKE_COUNT_TOLERANCE: float = 0.02


@dataclass(frozen=True)
class NumericsPolicy:
    """Selectable precision and forward path of the golden functional model."""

    precision: str = "fp64"
    forward_path: str = "dense"

    def __post_init__(self) -> None:
        if self.precision not in PRECISIONS:
            raise ValueError(
                f"precision must be one of {PRECISIONS}, got {self.precision!r}"
            )
        if self.forward_path not in FORWARD_PATHS:
            raise ValueError(
                f"forward_path must be one of {FORWARD_PATHS}, got {self.forward_path!r}"
            )

    @property
    def dtype(self) -> np.dtype:
        """The NumPy dtype of membrane currents, potentials and weights."""
        return np.dtype(_DTYPES[self.precision])

    @property
    def is_reference(self) -> bool:
        """Whether this is the bit-for-bit FP64 dense reference policy."""
        return self.precision == "fp64" and self.forward_path == "dense"

    def key(self) -> str:
        """Canonical string identity, e.g. ``"fp32-event_sparse"``.

        This exact string enters functional result-store fingerprints and
        serve compatibility group keys, and names the per-policy serve
        telemetry counters.
        """
        return f"{self.precision}-{self.forward_path}"

    @classmethod
    def from_key(cls, key: str) -> "NumericsPolicy":
        """Parse a :meth:`key`-formatted string (CLI flags use the parts)."""
        precision, _, forward_path = key.partition("-")
        return cls(precision=precision, forward_path=forward_path)

    def to_dict(self) -> Dict[str, str]:
        """JSON-friendly form (benchmark snapshots, telemetry)."""
        return {"precision": self.precision, "forward_path": self.forward_path}

    @classmethod
    def from_dict(cls, data: Dict[str, str]) -> "NumericsPolicy":
        return cls(
            precision=data["precision"], forward_path=data["forward_path"]
        )


REFERENCE = NumericsPolicy()
"""The bit-for-bit FP64 dense reference policy (the default everywhere)."""


def resolve(policy: Optional[NumericsPolicy]) -> NumericsPolicy:
    """``None`` -> :data:`REFERENCE`; anything else passes through.

    The single place that defines what "no policy" means, used by every
    layer that threads a policy (network, engine, session, serve).
    """
    return REFERENCE if policy is None else policy
