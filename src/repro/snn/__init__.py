"""Spiking-neural-network substrate.

This package provides the functional SNN model that SpikeStream accelerates:
Leaky Integrate-and-Fire neuron dynamics, spiking convolutional / fully
connected / pooling layers, the S-VGG11 network used throughout the paper's
evaluation, spike encoders for RGB images, a NumPy golden-reference
implementation, synthetic CIFAR-10-like data and firing-rate statistics.
"""

from .neuron import IzhikevichParameters, LIFParameters, LIFState, lif_step, lif_step_batch
from .numerics import (
    CLASSIFICATION_AGREEMENT_BOUND,
    FORWARD_PATHS,
    PRECISIONS,
    SPIKE_COUNT_TOLERANCE,
    NumericsPolicy,
)
from .layers import (
    Flatten,
    SpikingAvgPool2d,
    SpikingConv2d,
    SpikingLinear,
    SpikingMaxPool2d,
)
from .network import (
    BatchLayerRecord,
    BatchNetworkActivity,
    LayerRecord,
    NetworkActivity,
    SpikingNetwork,
)
from .svgg11 import (
    SVGG11_CONV_CHANNELS,
    SVGG11_LAYER_FIRING_RATES,
    build_svgg11,
    svgg11_layer_shapes,
)
from .encoding import DirectEncoder, PoissonEncoder, RateEncoder
from .datasets import (
    SyntheticCIFAR10,
    synthetic_compressed_ifmap,
    synthetic_layer_activity,
)
from .stats import ActivityStats, collect_activity_stats
from .events import DvsEvent, DvsEventStream, generate_moving_blob_stream
from .training import (
    SurrogateGradientTrainer,
    TrainingConfig,
    TrainingHistory,
    make_two_moons,
    surrogate_gradient,
)

__all__ = [
    "IzhikevichParameters",
    "LIFParameters",
    "LIFState",
    "lif_step",
    "lif_step_batch",
    "CLASSIFICATION_AGREEMENT_BOUND",
    "FORWARD_PATHS",
    "PRECISIONS",
    "SPIKE_COUNT_TOLERANCE",
    "NumericsPolicy",
    "Flatten",
    "SpikingAvgPool2d",
    "SpikingConv2d",
    "SpikingLinear",
    "SpikingMaxPool2d",
    "BatchLayerRecord",
    "BatchNetworkActivity",
    "LayerRecord",
    "NetworkActivity",
    "SpikingNetwork",
    "SVGG11_CONV_CHANNELS",
    "SVGG11_LAYER_FIRING_RATES",
    "build_svgg11",
    "svgg11_layer_shapes",
    "DirectEncoder",
    "PoissonEncoder",
    "RateEncoder",
    "SyntheticCIFAR10",
    "synthetic_compressed_ifmap",
    "synthetic_layer_activity",
    "ActivityStats",
    "collect_activity_stats",
    "DvsEvent",
    "DvsEventStream",
    "generate_moving_blob_stream",
    "SurrogateGradientTrainer",
    "TrainingConfig",
    "TrainingHistory",
    "make_two_moons",
    "surrogate_gradient",
]
