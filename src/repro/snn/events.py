"""Synthetic event-camera (DVS) streams.

The paper motivates SpikeStream with event-driven workloads; when the input
comes from an event camera rather than RGB images, the first layer consumes
binary event frames directly (no spike-encoding matmul).  This module
generates synthetic DVS-like event streams — a moving bright blob over a
noisy background — and accumulates them into the binary HWC frames the
spiking layers consume, so the examples and tests can exercise the
event-driven input path without a real sensor recording.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Tuple

import numpy as np

from ..types import TensorShape
from ..utils.rng import SeedLike, make_rng
from ..utils.validation import check_positive, check_probability


@dataclass(frozen=True)
class DvsEvent:
    """A single DVS event: pixel coordinates, polarity and timestamp (µs)."""

    row: int
    col: int
    polarity: int
    timestamp_us: int

    def __post_init__(self) -> None:
        if self.polarity not in (0, 1):
            raise ValueError(f"polarity must be 0 or 1, got {self.polarity}")
        if self.row < 0 or self.col < 0 or self.timestamp_us < 0:
            raise ValueError("row, col and timestamp_us must be non-negative")


@dataclass
class DvsEventStream:
    """A time-ordered list of DVS events for a fixed sensor resolution."""

    height: int
    width: int
    events: List[DvsEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        check_positive("height", self.height)
        check_positive("width", self.width)
        for event in self.events:
            self._check(event)

    def _check(self, event: DvsEvent) -> None:
        if event.row >= self.height or event.col >= self.width:
            raise ValueError(f"event {event} outside the {self.height}x{self.width} sensor")

    def append(self, event: DvsEvent) -> None:
        """Add an event (must not go back in time)."""
        self._check(event)
        if self.events and event.timestamp_us < self.events[-1].timestamp_us:
            raise ValueError("events must be appended in non-decreasing timestamp order")
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[DvsEvent]:
        return iter(self.events)

    @property
    def duration_us(self) -> int:
        """Time span covered by the stream."""
        if not self.events:
            return 0
        return self.events[-1].timestamp_us - self.events[0].timestamp_us

    def to_frames(self, window_us: int, polarities: int = 2) -> np.ndarray:
        """Accumulate events into binary frames of ``window_us`` microseconds.

        Returns a boolean array of shape ``(num_windows, H, W, polarities)``;
        with ``polarities=1`` both polarities are merged into one channel.
        """
        check_positive("window_us", window_us)
        if polarities not in (1, 2):
            raise ValueError("polarities must be 1 or 2")
        if not self.events:
            return np.zeros((0, self.height, self.width, polarities), dtype=bool)
        start = self.events[0].timestamp_us
        num_windows = (self.duration_us // window_us) + 1
        frames = np.zeros((num_windows, self.height, self.width, polarities), dtype=bool)
        for event in self.events:
            window = (event.timestamp_us - start) // window_us
            channel = event.polarity if polarities == 2 else 0
            frames[window, event.row, event.col, channel] = True
        return frames

    def firing_rate(self, window_us: int) -> float:
        """Average fraction of active pixels per accumulated frame."""
        frames = self.to_frames(window_us)
        if frames.size == 0:
            return 0.0
        return float(np.count_nonzero(frames)) / frames.size


def generate_moving_blob_stream(
    shape: TensorShape = TensorShape(32, 32, 2),
    duration_us: int = 10_000,
    event_rate_per_us: float = 0.5,
    background_noise: float = 0.05,
    seed: SeedLike = 0,
) -> DvsEventStream:
    """Generate a synthetic DVS stream of a bright blob sweeping across the sensor.

    ``background_noise`` is the fraction of events fired by random background
    pixels rather than the moving object, modelling sensor noise.
    """
    check_positive("duration_us", duration_us)
    check_positive("event_rate_per_us", event_rate_per_us)
    check_probability("background_noise", background_noise)
    rng = make_rng(seed)
    stream = DvsEventStream(height=shape.height, width=shape.width)
    total_events = int(duration_us * event_rate_per_us)
    timestamps = np.sort(rng.integers(0, duration_us, size=total_events))
    radius = max(2, min(shape.height, shape.width) // 8)
    for timestamp in timestamps:
        progress = timestamp / duration_us
        center_row = int(progress * (shape.height - 1))
        center_col = int((1.0 - progress) * (shape.width - 1))
        if rng.random() < background_noise:
            row = int(rng.integers(0, shape.height))
            col = int(rng.integers(0, shape.width))
            polarity = int(rng.integers(0, 2))
        else:
            row = int(np.clip(center_row + rng.integers(-radius, radius + 1), 0, shape.height - 1))
            col = int(np.clip(center_col + rng.integers(-radius, radius + 1), 0, shape.width - 1))
            polarity = int(rng.random() < progress)
        stream.append(DvsEvent(row=row, col=col, polarity=polarity, timestamp_us=int(timestamp)))
    return stream


def event_frames_for_network(
    stream: DvsEventStream, window_us: int, channels: int
) -> Tuple[np.ndarray, float]:
    """Accumulate a stream into frames matching a network's input channel count.

    Returns ``(frames, mean_firing_rate)``; raises if the channel count is not
    1 or 2 (DVS streams carry at most two polarities).
    """
    if channels not in (1, 2):
        raise ValueError("event-driven networks take 1 or 2 input channels")
    frames = stream.to_frames(window_us, polarities=channels)
    rate = stream.firing_rate(window_us)
    return frames, rate
