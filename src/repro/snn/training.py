"""Surrogate-gradient training for small spiking networks.

The S-VGG11 of the paper is "trained with temporal backpropagation"; the
trained weights are not public, and training a VGG-scale network in NumPy is
out of scope.  This module provides the training substrate at laptop scale:
single-timestep surrogate-gradient descent for networks built from
:class:`~repro.snn.layers.SpikingLinear` (and flattening of spike maps), good
enough to train the FC head of a network or a small classifier on synthetic
data — and to demonstrate that the functional substrate is differentiable in
the surrogate sense, not just a fixed-weight simulator.

The surrogate used is the standard fast-sigmoid derivative

.. math::  \\frac{\\partial s}{\\partial v} \\approx
           \\frac{1}{(1 + \\beta |v - v_{th}|)^2}

applied at the threshold crossing of each LIF neuron.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..utils.rng import SeedLike, make_rng
from .layers import SpikingLinear
from .neuron import LIFParameters


def surrogate_gradient(membrane: np.ndarray, lif: LIFParameters, beta: float = 5.0) -> np.ndarray:
    """Fast-sigmoid surrogate derivative of the spike w.r.t. the membrane potential."""
    if beta <= 0:
        raise ValueError(f"beta must be positive, got {beta}")
    return 1.0 / (1.0 + beta * np.abs(membrane - lif.v_threshold)) ** 2


@dataclass
class TrainingConfig:
    """Hyper-parameters of the surrogate-gradient trainer."""

    learning_rate: float = 0.05
    epochs: int = 20
    batch_size: int = 32
    surrogate_beta: float = 5.0
    seed: SeedLike = 0

    def __post_init__(self) -> None:
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.epochs <= 0 or self.batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")


@dataclass
class TrainingHistory:
    """Loss and accuracy per epoch."""

    loss: List[float] = field(default_factory=list)
    accuracy: List[float] = field(default_factory=list)

    @property
    def final_accuracy(self) -> float:
        """Accuracy after the last epoch (0 if never trained)."""
        return self.accuracy[-1] if self.accuracy else 0.0


class SurrogateGradientTrainer:
    """Train a stack of :class:`SpikingLinear` layers with surrogate gradients.

    The network is run for a single timestep (direct encoding, as in the
    paper's low-latency S-VGG11); the readout is the output layer's membrane
    potential and the loss is a softmax cross-entropy on it.  Hidden layers
    propagate gradients through the spike nonlinearity via the surrogate.
    """

    def __init__(self, layers: Sequence[SpikingLinear], config: Optional[TrainingConfig] = None):
        if not layers:
            raise ValueError("at least one SpikingLinear layer is required")
        for first, second in zip(layers, layers[1:]):
            if first.out_features != second.in_features:
                raise ValueError(
                    f"layer {first.name!r} output ({first.out_features}) does not match "
                    f"layer {second.name!r} input ({second.in_features})"
                )
        self.layers = list(layers)
        self.config = config or TrainingConfig()
        rng = make_rng(self.config.seed)
        for layer in self.layers:
            if layer.weights is None:
                layer.initialize(rng)

    # ------------------------------------------------------------------ #
    # Forward / backward
    # ------------------------------------------------------------------ #
    def _forward(self, inputs: np.ndarray) -> Tuple[np.ndarray, List[dict]]:
        """Run one timestep; returns output membranes and per-layer caches."""
        caches: List[dict] = []
        activations = inputs.astype(np.float64)
        for index, layer in enumerate(self.layers):
            weights = layer.require_weights()
            currents = activations @ weights
            membrane = layer.lif.resistance * currents
            is_output = index == len(self.layers) - 1
            spikes = (membrane >= layer.lif.v_threshold).astype(np.float64)
            caches.append(
                {"inputs": activations, "membrane": membrane, "spikes": spikes, "layer": layer}
            )
            activations = membrane if is_output else spikes
        return activations, caches

    @staticmethod
    def _softmax(logits: np.ndarray) -> np.ndarray:
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)

    def _backward(self, caches: List[dict], probabilities: np.ndarray, labels: np.ndarray) -> None:
        batch = len(labels)
        one_hot = np.zeros_like(probabilities)
        one_hot[np.arange(batch), labels] = 1.0
        grad = (probabilities - one_hot) / batch
        for index in reversed(range(len(self.layers))):
            cache = caches[index]
            layer: SpikingLinear = cache["layer"]
            if index != len(self.layers) - 1:
                grad = grad * surrogate_gradient(
                    cache["membrane"], layer.lif, self.config.surrogate_beta
                )
            grad_weights = cache["inputs"].T @ (grad * layer.lif.resistance)
            grad = (grad * layer.lif.resistance) @ layer.require_weights().T
            layer.weights = layer.require_weights() - self.config.learning_rate * grad_weights

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Predicted class per input row."""
        inputs = np.atleast_2d(np.asarray(inputs, dtype=np.float64))
        logits, _ = self._forward(inputs)
        return np.argmax(logits, axis=1)

    def accuracy(self, inputs: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy on a dataset."""
        return float(np.mean(self.predict(inputs) == np.asarray(labels)))

    def fit(self, inputs: np.ndarray, labels: np.ndarray) -> TrainingHistory:
        """Train on ``(inputs, labels)`` and return the per-epoch history."""
        inputs = np.atleast_2d(np.asarray(inputs, dtype=np.float64))
        labels = np.asarray(labels, dtype=np.int64)
        if len(inputs) != len(labels):
            raise ValueError("inputs and labels must have the same length")
        if inputs.shape[1] != self.layers[0].in_features:
            raise ValueError(
                f"inputs have {inputs.shape[1]} features, expected {self.layers[0].in_features}"
            )
        rng = make_rng(self.config.seed)
        history = TrainingHistory()
        for _ in range(self.config.epochs):
            order = rng.permutation(len(inputs))
            epoch_loss = 0.0
            for start in range(0, len(inputs), self.config.batch_size):
                batch_index = order[start : start + self.config.batch_size]
                batch_inputs, batch_labels = inputs[batch_index], labels[batch_index]
                logits, caches = self._forward(batch_inputs)
                probabilities = self._softmax(logits)
                losses = -np.log(
                    probabilities[np.arange(len(batch_labels)), batch_labels] + 1e-12
                )
                epoch_loss += float(losses.sum())
                self._backward(caches, probabilities, batch_labels)
            history.loss.append(epoch_loss / len(inputs))
            history.accuracy.append(self.accuracy(inputs, labels))
        return history


def make_two_moons(
    samples: int = 200, noise: float = 0.08, seed: SeedLike = 0
) -> Tuple[np.ndarray, np.ndarray]:
    """A tiny two-class synthetic dataset for trainer tests and examples.

    Two interleaved half-circles in 2-D, expanded with their squares so a
    single spiking hidden layer can separate them.
    """
    if samples < 2:
        raise ValueError("samples must be at least 2")
    rng = make_rng(seed)
    half = samples // 2
    angles = rng.uniform(0.0, np.pi, size=half)
    first = np.stack([np.cos(angles), np.sin(angles)], axis=1)
    second = np.stack([1.0 - np.cos(angles), 0.5 - np.sin(angles)], axis=1)
    points = np.concatenate([first, second]) + rng.normal(0.0, noise, size=(2 * half, 2))
    labels = np.concatenate([np.zeros(half, dtype=np.int64), np.ones(half, dtype=np.int64)])
    features = np.concatenate([points, points**2], axis=1)
    return features, labels
