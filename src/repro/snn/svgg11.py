"""The S-VGG11 network used throughout the paper's evaluation.

The model is a spiking VGG-11 for CIFAR-10 (32x32x3 inputs), trained with
temporal backpropagation in the original work and executed for a single
timestep in the main evaluation.  The first convolutional layer performs
spike encoding: raw pixel values are interpreted directly as input currents.

The per-layer ifmap shapes reported in Figure 3a (34x34x3, 34x34x64,
18x18x128, 18x18x256, 10x10x256, 10x10x512, ...) are the zero-padded inputs
of the convolutional layers; this module reproduces exactly those shapes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..types import TensorShape
from .layers import Flatten, SpikingConv2d, SpikingLinear, SpikingMaxPool2d
from .neuron import LIFParameters
from .network import SpikingNetwork

SVGG11_INPUT_SHAPE = TensorShape(32, 32, 3)
"""CIFAR-10 input frame shape (HWC)."""

SVGG11_CONV_CHANNELS = (64, 128, 256, 256, 512, 512, 512, 512)
"""Output channels of the eight convolutional layers of VGG-11."""

_POOL_AFTER_CONV = (2, 4, 6, 8)
"""1-based conv-layer indices followed by a 2x2 max-pool (VGG-11 topology)."""

SVGG11_FC_FEATURES = (4096, 4096, 10)
"""Output features of the three fully connected layers."""

SVGG11_LAYER_FIRING_RATES: Dict[str, float] = {
    "conv1": 1.0,   # dense RGB input (spike encoding layer)
    "conv2": 0.45,
    "conv3": 0.31,
    "conv4": 0.24,
    "conv5": 0.15,
    "conv6": 0.10,
    "conv7": 0.09,
    "conv8": 0.08,
    "fc1": 0.06,
    "fc2": 0.04,
    "fc3": 0.03,
}
"""Default per-layer *input* firing rates, following the firing-activity
profile of Figure 3a (decreasing with depth; FC layers extremely sparse)."""


def build_svgg11(
    lif: Optional[LIFParameters] = None,
    rng=None,
    initialize: bool = True,
) -> SpikingNetwork:
    """Construct the S-VGG11 spiking network.

    Parameters
    ----------
    lif:
        Neuron parameters shared by all layers (paper defaults if omitted).
    rng:
        Seed or generator for weight initialization.
    initialize:
        If True (default), weights are randomly initialized; pass False to
        load custom weights afterwards.
    """
    lif = lif or LIFParameters()
    layers: List = []
    in_channels = SVGG11_INPUT_SHAPE.channels
    for position, out_channels in enumerate(SVGG11_CONV_CHANNELS, start=1):
        layers.append(
            SpikingConv2d(
                in_channels=in_channels,
                out_channels=out_channels,
                kernel_size=3,
                stride=1,
                padding=1,
                lif=lif,
                encodes_input=(position == 1),
                name=f"conv{position}",
            )
        )
        if position in _POOL_AFTER_CONV:
            layers.append(SpikingMaxPool2d(kernel_size=2, stride=2, name=f"pool{position}"))
        in_channels = out_channels

    layers.append(Flatten(name="flatten"))
    # After four 2x2 pools, the 32x32 input becomes 2x2x512 = 2048 features.
    in_features = (SVGG11_INPUT_SHAPE.height // 16) * (SVGG11_INPUT_SHAPE.width // 16) * in_channels
    for position, out_features in enumerate(SVGG11_FC_FEATURES, start=1):
        layers.append(
            SpikingLinear(
                in_features=in_features,
                out_features=out_features,
                lif=lif,
                is_output=(position == len(SVGG11_FC_FEATURES)),
                name=f"fc{position}",
            )
        )
        in_features = out_features

    network = SpikingNetwork(layers, input_shape=SVGG11_INPUT_SHAPE, name="s-vgg11")
    if initialize:
        network.initialize(rng)
    return network


def svgg11_layer_shapes() -> List[Dict[str, object]]:
    """Describe every weighted layer of S-VGG11 without building weights.

    Returns a list of dictionaries with the layer name, kind, unpadded and
    padded input shapes, output shape, kernel geometry and default firing
    rate of the layer's ifmap.  This is the workload description used by the
    statistical (shape-only) experiments, which never materialize weights.
    """
    descriptions: List[Dict[str, object]] = []
    shape = SVGG11_INPUT_SHAPE
    in_channels = shape.channels
    for position, out_channels in enumerate(SVGG11_CONV_CHANNELS, start=1):
        name = f"conv{position}"
        padded = TensorShape(shape.height + 2, shape.width + 2, in_channels)
        out_shape = TensorShape(shape.height, shape.width, out_channels)
        descriptions.append(
            {
                "name": name,
                "kind": "conv",
                "input_shape": shape,
                "padded_input_shape": padded,
                "output_shape": out_shape,
                "kernel_size": 3,
                "stride": 1,
                "padding": 1,
                "in_channels": in_channels,
                "out_channels": out_channels,
                "encodes_input": position == 1,
                "firing_rate": SVGG11_LAYER_FIRING_RATES[name],
            }
        )
        shape = out_shape
        if position in _POOL_AFTER_CONV:
            shape = TensorShape(shape.height // 2, shape.width // 2, shape.channels)
        in_channels = out_channels

    in_features = shape.numel
    for position, out_features in enumerate(SVGG11_FC_FEATURES, start=1):
        name = f"fc{position}"
        descriptions.append(
            {
                "name": name,
                "kind": "linear",
                "input_shape": TensorShape(1, 1, in_features),
                "padded_input_shape": TensorShape(1, 1, in_features),
                "output_shape": TensorShape(1, 1, out_features),
                "kernel_size": 1,
                "stride": 1,
                "padding": 0,
                "in_channels": in_features,
                "out_channels": out_features,
                "encodes_input": False,
                "firing_rate": SVGG11_LAYER_FIRING_RATES[name],
            }
        )
        in_features = out_features
    return descriptions


def svgg11_conv_ifmap_shapes() -> List[TensorShape]:
    """Padded conv-layer ifmap shapes as listed on the x-axis of Figure 3a."""
    return [d["padded_input_shape"] for d in svgg11_layer_shapes() if d["kind"] == "conv"]


def layer_names(include_fc: bool = True) -> Sequence[str]:
    """Names of the weighted layers in network order."""
    names = [d["name"] for d in svgg11_layer_shapes()]
    if not include_fc:
        names = [n for n in names if n.startswith("conv")]
    return names
