"""Spiking neuron models.

The Leaky Integrate-and-Fire (LIF) model of Eq. (1) in the paper is the
workhorse of every S-VGG11 layer:

.. math::

    i_m(t)   &= \\sum_n s_{i,n}(t) \\, w_n \\\\
    v_m(t)   &= \\alpha \\, v_m(t-1) + r \\, i_m(t) - v_{rst} \\, s_{o,m}(t) \\\\
    s_{o,m}(t) &= 1 \\ \\text{if} \\ v_m(t) \\ge v_{th} \\ \\text{else} \\ 0

The Izhikevich model used by ODIN is included for completeness (it is only
needed by the accelerator comparison substrate).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class LIFParameters:
    """Parameters of the Leaky Integrate-and-Fire neuron.

    Attributes
    ----------
    alpha:
        Membrane decay factor applied to the previous potential.
    v_threshold:
        Firing threshold ``v_th``.
    v_reset:
        Reset potential ``v_rst`` subtracted when the neuron fires
        (soft reset, as in Eq. (1)).
    resistance:
        Membrane resistance ``r`` scaling the input current (usually 1).
    """

    alpha: float = 0.9
    v_threshold: float = 1.0
    v_reset: float = 1.0
    resistance: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {self.alpha}")
        if self.v_threshold <= 0.0:
            raise ValueError(f"v_threshold must be positive, got {self.v_threshold}")
        if self.resistance <= 0.0:
            raise ValueError(f"resistance must be positive, got {self.resistance}")


@dataclass
class LIFState:
    """Mutable membrane state of a population of LIF neurons."""

    membrane: np.ndarray

    @classmethod
    def zeros(cls, shape: Tuple[int, ...], dtype=np.float64) -> "LIFState":
        """Create a state with all membrane potentials at zero."""
        return cls(membrane=np.zeros(shape, dtype=dtype))

    def copy(self) -> "LIFState":
        """Return an independent copy of the state."""
        return LIFState(membrane=self.membrane.copy())


def lif_step(
    state: LIFState, input_current: np.ndarray, params: LIFParameters
) -> Tuple[LIFState, np.ndarray]:
    """Advance a LIF population by one timestep.

    Parameters
    ----------
    state:
        Current membrane state (not modified).
    input_current:
        Input current ``i_m(t)`` with the same shape as the membrane.
    params:
        Neuron parameters.

    Returns
    -------
    (new_state, spikes):
        The updated state and a boolean spike array ``s_{o,m}(t)``.
    """
    input_current = np.asarray(input_current)
    if input_current.shape != state.membrane.shape:
        raise ValueError(
            f"input_current shape {input_current.shape} does not match membrane "
            f"shape {state.membrane.shape}"
        )
    membrane = state.membrane * params.alpha + params.resistance * input_current
    spikes = membrane >= params.v_threshold
    membrane = membrane - params.v_reset * spikes
    return LIFState(membrane=membrane), spikes


#: Element count of one chunk of the batched LIF update (~4 MB of FP64).
#: A whole batch-64 S-VGG11 conv2 membrane is a 67 MB array; updating it in
#: one sweep would stream every intermediate through DRAM, while chunks this
#: size keep the temporaries cache-resident.
_LIF_CHUNK_ELEMS = 512 * 1024


def lif_step_batch(
    state: LIFState, input_current: np.ndarray, params: LIFParameters
) -> Tuple[LIFState, np.ndarray]:
    """Advance a *batched* LIF population by one timestep.

    The state's membrane (and ``input_current``) carry a leading batch axis:
    shape ``(B,) + population_shape``.  The update applies the same
    element-wise arithmetic as :func:`lif_step` in the same per-element
    operation order — evaluated over cache-sized chunks of the flattened
    population — so every frame's slice of the result is bit-for-bit
    identical to stepping that frame's population alone.  That exactness is
    what makes the batched network forward pass a drop-in for the per-frame
    loop.
    """
    input_current = np.asarray(input_current)
    if input_current.shape != state.membrane.shape:
        raise ValueError(
            f"input_current shape {input_current.shape} does not match membrane "
            f"shape {state.membrane.shape}"
        )
    flat_state = state.membrane.reshape(-1)
    flat_current = input_current.reshape(-1)
    # A zero-length probe step fixes the output dtype to exactly what
    # lif_step would produce for these operand dtypes.
    probe, _ = lif_step(LIFState(membrane=flat_state[:0]), flat_current[:0], params)
    # Fresh C-contiguous outputs: their flat views below must alias them.
    membrane = np.empty(state.membrane.shape, dtype=probe.membrane.dtype)
    spikes = np.empty(state.membrane.shape, dtype=bool)
    flat_membrane = membrane.reshape(-1)
    flat_spikes = spikes.reshape(-1)
    for start in range(0, flat_state.size, _LIF_CHUNK_ELEMS):
        stop = min(start + _LIF_CHUNK_ELEMS, flat_state.size)
        # The exact lif_step expressions, element-wise over one chunk:
        # chunking cannot change a single bit.
        chunk = flat_state[start:stop] * params.alpha + params.resistance * flat_current[start:stop]
        chunk_spikes = chunk >= params.v_threshold
        flat_membrane[start:stop] = chunk - params.v_reset * chunk_spikes
        flat_spikes[start:stop] = chunk_spikes
    return LIFState(membrane=membrane), spikes


@dataclass(frozen=True)
class IzhikevichParameters:
    """Parameters of the Izhikevich neuron model used by the ODIN accelerator."""

    a: float = 0.02
    b: float = 0.2
    c: float = -65.0
    d: float = 8.0
    v_threshold: float = 30.0


@dataclass
class IzhikevichState:
    """Membrane potential and recovery variable of an Izhikevich population."""

    v: np.ndarray
    u: np.ndarray

    @classmethod
    def resting(cls, shape: Tuple[int, ...], params: IzhikevichParameters) -> "IzhikevichState":
        """Initialize the population at the resting potential."""
        v = np.full(shape, params.c, dtype=np.float64)
        u = params.b * v
        return cls(v=v, u=u)


def izhikevich_step(
    state: IzhikevichState,
    input_current: np.ndarray,
    params: IzhikevichParameters,
    dt: float = 1.0,
) -> Tuple[IzhikevichState, np.ndarray]:
    """Advance an Izhikevich population by one timestep of length ``dt`` ms."""
    input_current = np.asarray(input_current)
    v, u = state.v, state.u
    dv = 0.04 * v * v + 5.0 * v + 140.0 - u + input_current
    du = params.a * (params.b * v - u)
    v = v + dt * dv
    u = u + dt * du
    spikes = v >= params.v_threshold
    v = np.where(spikes, params.c, v)
    u = np.where(spikes, u + params.d, u)
    return IzhikevichState(v=v, u=u), spikes
