"""Spiking neuron models.

The Leaky Integrate-and-Fire (LIF) model of Eq. (1) in the paper is the
workhorse of every S-VGG11 layer:

.. math::

    i_m(t)   &= \\sum_n s_{i,n}(t) \\, w_n \\\\
    v_m(t)   &= \\alpha \\, v_m(t-1) + r \\, i_m(t) - v_{rst} \\, s_{o,m}(t) \\\\
    s_{o,m}(t) &= 1 \\ \\text{if} \\ v_m(t) \\ge v_{th} \\ \\text{else} \\ 0

The Izhikevich model used by ODIN is included for completeness (it is only
needed by the accelerator comparison substrate).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class LIFParameters:
    """Parameters of the Leaky Integrate-and-Fire neuron.

    Attributes
    ----------
    alpha:
        Membrane decay factor applied to the previous potential.
    v_threshold:
        Firing threshold ``v_th``.
    v_reset:
        Reset potential ``v_rst`` subtracted when the neuron fires
        (soft reset, as in Eq. (1)).
    resistance:
        Membrane resistance ``r`` scaling the input current (usually 1).
    """

    alpha: float = 0.9
    v_threshold: float = 1.0
    v_reset: float = 1.0
    resistance: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {self.alpha}")
        if self.v_threshold <= 0.0:
            raise ValueError(f"v_threshold must be positive, got {self.v_threshold}")
        if self.resistance <= 0.0:
            raise ValueError(f"resistance must be positive, got {self.resistance}")


@dataclass
class LIFState:
    """Mutable membrane state of a population of LIF neurons."""

    membrane: np.ndarray

    @classmethod
    def zeros(cls, shape: Tuple[int, ...], dtype=np.float64) -> "LIFState":
        """Create a state with all membrane potentials at zero."""
        return cls(membrane=np.zeros(shape, dtype=dtype))

    def copy(self) -> "LIFState":
        """Return an independent copy of the state."""
        return LIFState(membrane=self.membrane.copy())


def lif_step(
    state: LIFState, input_current: np.ndarray, params: LIFParameters
) -> Tuple[LIFState, np.ndarray]:
    """Advance a LIF population by one timestep.

    Parameters
    ----------
    state:
        Current membrane state (not modified).
    input_current:
        Input current ``i_m(t)`` with the same shape as the membrane.
    params:
        Neuron parameters.

    Returns
    -------
    (new_state, spikes):
        The updated state and a boolean spike array ``s_{o,m}(t)``.
    """
    input_current = np.asarray(input_current)
    if input_current.shape != state.membrane.shape:
        raise ValueError(
            f"input_current shape {input_current.shape} does not match membrane "
            f"shape {state.membrane.shape}"
        )
    membrane = state.membrane * params.alpha + params.resistance * input_current
    spikes = membrane >= params.v_threshold
    membrane = membrane - params.v_reset * spikes
    return LIFState(membrane=membrane), spikes


@dataclass(frozen=True)
class IzhikevichParameters:
    """Parameters of the Izhikevich neuron model used by the ODIN accelerator."""

    a: float = 0.02
    b: float = 0.2
    c: float = -65.0
    d: float = 8.0
    v_threshold: float = 30.0


@dataclass
class IzhikevichState:
    """Membrane potential and recovery variable of an Izhikevich population."""

    v: np.ndarray
    u: np.ndarray

    @classmethod
    def resting(cls, shape: Tuple[int, ...], params: IzhikevichParameters) -> "IzhikevichState":
        """Initialize the population at the resting potential."""
        v = np.full(shape, params.c, dtype=np.float64)
        u = params.b * v
        return cls(v=v, u=u)


def izhikevich_step(
    state: IzhikevichState,
    input_current: np.ndarray,
    params: IzhikevichParameters,
    dt: float = 1.0,
) -> Tuple[IzhikevichState, np.ndarray]:
    """Advance an Izhikevich population by one timestep of length ``dt`` ms."""
    input_current = np.asarray(input_current)
    v, u = state.v, state.u
    dv = 0.04 * v * v + 5.0 * v + 140.0 - u + input_current
    du = params.a * (params.b * v - u)
    v = v + dt * dv
    u = u + dt * du
    spikes = v >= params.v_threshold
    v = np.where(spikes, params.c, v)
    u = np.where(spikes, u + params.d, u)
    return IzhikevichState(v=v, u=u), spikes
