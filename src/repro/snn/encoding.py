"""Spike encoders for converting RGB images into spike trains.

Most directly-trained SNNs (including S-VGG11) use *direct encoding*: the
first convolutional layer receives the raw pixel intensities as input
currents and its LIF neurons emit the first spikes (Section III-F).  Rate and
Poisson encoders are provided for multi-timestep experiments and for users
whose networks expect spike inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..utils.rng import SeedLike, make_rng
from ..utils.validation import check_positive


@dataclass
class DirectEncoder:
    """Identity encoder: pixel values become the first layer's input currents.

    ``scale`` allows normalizing 0-255 images into the 0-1 range expected by
    the trained network.
    """

    scale: float = 1.0

    def __post_init__(self) -> None:
        check_positive("scale", self.scale)

    def encode(self, image: np.ndarray, timesteps: int = 1) -> np.ndarray:
        """Return a ``(timesteps, H, W, C)`` array of input currents."""
        check_positive("timesteps", timesteps)
        image = np.asarray(image, dtype=np.float64) * self.scale
        return np.repeat(image[None, ...], timesteps, axis=0)


@dataclass
class PoissonEncoder:
    """Poisson (Bernoulli-per-timestep) rate encoder.

    Each pixel fires independently at every timestep with probability equal
    to its normalized intensity.
    """

    max_rate: float = 1.0
    seed: SeedLike = None

    def __post_init__(self) -> None:
        if not 0.0 < self.max_rate <= 1.0:
            raise ValueError(f"max_rate must be in (0, 1], got {self.max_rate}")

    def encode(self, image: np.ndarray, timesteps: int = 1) -> np.ndarray:
        """Return a boolean ``(timesteps, H, W, C)`` spike train."""
        check_positive("timesteps", timesteps)
        rng = make_rng(self.seed)
        image = np.clip(np.asarray(image, dtype=np.float64), 0.0, 1.0) * self.max_rate
        draws = rng.random((timesteps,) + image.shape)
        return draws < image[None, ...]


@dataclass
class RateEncoder:
    """Deterministic rate encoder.

    A pixel with normalized intensity ``p`` emits ``round(p * timesteps)``
    spikes, spread as evenly as possible across the window — useful when a
    reproducible spike count matters more than temporal realism.
    """

    def encode(self, image: np.ndarray, timesteps: int = 1) -> np.ndarray:
        """Return a boolean ``(timesteps, H, W, C)`` spike train."""
        check_positive("timesteps", timesteps)
        image = np.clip(np.asarray(image, dtype=np.float64), 0.0, 1.0)
        counts = np.round(image * timesteps).astype(np.int64)
        spikes = np.zeros((timesteps,) + image.shape, dtype=bool)
        # A neuron that must fire k times in T steps fires at steps where the
        # accumulated phase crosses an integer (evenly spread pattern).
        for t in range(timesteps):
            threshold_before = (counts * t) // timesteps
            threshold_after = (counts * (t + 1)) // timesteps
            spikes[t] = threshold_after > threshold_before
        return spikes
