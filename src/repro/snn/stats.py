"""Firing-rate and sparsity statistics over batches of network activity."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

import numpy as np

from .network import LayerRecord, NetworkActivity


@dataclass(frozen=True)
class ActivityStats:
    """Mean and standard deviation of a per-layer activity metric over a batch."""

    layer_name: str
    mean_firing_rate: float
    std_firing_rate: float
    mean_spike_count: float
    std_spike_count: float
    samples: int

    def as_dict(self) -> Dict[str, float]:
        """Return the statistics as a flat dictionary."""
        return {
            "layer": self.layer_name,
            "mean_firing_rate": self.mean_firing_rate,
            "std_firing_rate": self.std_firing_rate,
            "mean_spike_count": self.mean_spike_count,
            "std_spike_count": self.std_spike_count,
            "samples": self.samples,
        }


def collect_activity_stats(activities: Iterable[NetworkActivity]) -> List[ActivityStats]:
    """Aggregate input firing rates per layer over a batch of forward passes."""
    per_layer_rates: Dict[str, List[float]] = {}
    per_layer_counts: Dict[str, List[int]] = {}
    for activity in activities:
        for record in activity.records:
            per_layer_rates.setdefault(record.name, []).append(record.input_firing_rate)
            count = (
                int(np.count_nonzero(record.input_spikes))
                if record.input_spikes is not None
                else record.input_shape.numel
            )
            per_layer_counts.setdefault(record.name, []).append(count)

    stats: List[ActivityStats] = []
    for name, rates in per_layer_rates.items():
        counts = per_layer_counts[name]
        stats.append(
            ActivityStats(
                layer_name=name,
                mean_firing_rate=float(np.mean(rates)),
                std_firing_rate=float(np.std(rates)),
                mean_spike_count=float(np.mean(counts)),
                std_spike_count=float(np.std(counts)),
                samples=len(rates),
            )
        )
    return stats


def summarize_records(records: Sequence[LayerRecord]) -> Dict[str, float]:
    """Summarize a list of layer records into mean input/output firing rates."""
    if not records:
        return {"mean_input_rate": 0.0, "mean_output_rate": 0.0, "records": 0}
    return {
        "mean_input_rate": float(np.mean([r.input_firing_rate for r in records])),
        "mean_output_rate": float(np.mean([r.output_firing_rate for r in records])),
        "records": len(records),
    }
