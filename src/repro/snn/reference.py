"""NumPy golden-reference implementations of the SNN layer arithmetic.

These functions are the "ground truth" against which the cluster kernels of
:mod:`repro.kernels` are validated.  They deliberately use a different
computational route (dense im2col matrix products) than the kernels (gathers
over compressed index arrays) so that agreement between the two is a
meaningful correctness check.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

try:  # pragma: no cover - exercised indirectly by the sparse-path tests
    from scipy import sparse as _scipy_sparse
except ImportError:  # pragma: no cover - the image bakes scipy in
    _scipy_sparse = None


def pad_hwc(x: np.ndarray, padding: int) -> np.ndarray:
    """Zero-pad the two spatial dimensions of an HWC tensor."""
    if padding < 0:
        raise ValueError(f"padding must be non-negative, got {padding}")
    if padding == 0:
        return np.asarray(x)
    return np.pad(np.asarray(x), ((padding, padding), (padding, padding), (0, 0)))


def pad_bhwc(x: np.ndarray, padding: int) -> np.ndarray:
    """Zero-pad the two spatial dimensions of a batched BHWC tensor."""
    if padding < 0:
        raise ValueError(f"padding must be non-negative, got {padding}")
    if padding == 0:
        return np.asarray(x)
    return np.pad(
        np.asarray(x), ((0, 0), (padding, padding), (padding, padding), (0, 0))
    )


def conv_output_size(in_size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    out = (in_size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution produces non-positive output size for in={in_size}, "
            f"kernel={kernel}, stride={stride}, padding={padding}"
        )
    return out


def im2row(x: np.ndarray, kernel: Tuple[int, int], stride: int, padding: int) -> np.ndarray:
    """Rearrange an HWC tensor into im2row form.

    Returns an array of shape ``(out_h * out_w, kh * kw * C)`` where each row
    contains the receptive field of one output position in (kh, kw, C) order —
    the same layout SpikeStream produces with its 2-D DMA transfer for the
    spike-encoding first layer (Section III-F).
    """
    x = np.asarray(x)
    if x.ndim != 3:
        raise ValueError(f"expected an HWC tensor, got shape {x.shape}")
    kh, kw = kernel
    padded = pad_hwc(x, padding)
    in_h, in_w, channels = padded.shape
    out_h = (in_h - kh) // stride + 1
    out_w = (in_w - kw) // stride + 1
    rows = np.empty((out_h * out_w, kh * kw * channels), dtype=padded.dtype)
    for oy in range(out_h):
        for ox in range(out_w):
            patch = padded[oy * stride : oy * stride + kh, ox * stride : ox * stride + kw, :]
            rows[oy * out_w + ox] = patch.reshape(-1)
    return rows


def im2row_batch(
    x: np.ndarray, kernel: Tuple[int, int], stride: int, padding: int
) -> np.ndarray:
    """Batched :func:`im2row`: BHWC input -> ``(B, out_h * out_w, kh * kw * C)``.

    The receptive-field walk runs once for the whole batch (each iteration
    slices every frame's patch at that output position), so the Python loop
    cost is amortized over the batch instead of paid per frame.  Each
    ``im2row_batch(x, ...)[b]`` holds exactly the bytes of
    ``im2row(x[b], ...)`` — patch extraction copies values, it performs no
    arithmetic.
    """
    x = np.asarray(x)
    if x.ndim != 4:
        raise ValueError(f"expected a BHWC tensor, got shape {x.shape}")
    kh, kw = kernel
    padded = pad_bhwc(x, padding)
    batch, in_h, in_w, channels = padded.shape
    out_h = (in_h - kh) // stride + 1
    out_w = (in_w - kw) // stride + 1
    rows = np.empty((batch, out_h * out_w, kh * kw * channels), dtype=padded.dtype)
    for oy in range(out_h):
        for ox in range(out_w):
            patch = padded[:, oy * stride : oy * stride + kh, ox * stride : ox * stride + kw, :]
            rows[:, oy * out_w + ox] = patch.reshape(batch, -1)
    return rows


def conv2d_hwc(
    x: np.ndarray,
    weights: np.ndarray,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Dense 2-D convolution on HWC tensors.

    Parameters
    ----------
    x:
        Input tensor of shape ``(H, W, C_in)``; may be boolean spikes or real
        valued input currents.
    weights:
        Filter bank of shape ``(kh, kw, C_in, C_out)``.

    Returns
    -------
    Output currents of shape ``(out_h, out_w, C_out)``.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 4:
        raise ValueError(f"weights must be (kh, kw, C_in, C_out), got shape {weights.shape}")
    kh, kw, c_in, c_out = weights.shape
    x = np.asarray(x)
    if x.shape[-1] != c_in:
        raise ValueError(
            f"input has {x.shape[-1]} channels but weights expect {c_in}"
        )
    rows = im2row(x.astype(np.float64), (kh, kw), stride, padding)
    out_h = conv_output_size(x.shape[0], kh, stride, padding)
    out_w = conv_output_size(x.shape[1], kw, stride, padding)
    flat = rows @ weights.reshape(kh * kw * c_in, c_out)
    return flat.reshape(out_h, out_w, c_out)


#: Target byte size of one im2row chunk buffer.  Large enough to amortize the
#: per-position Python walk over many frames, small enough that the buffer
#: and the GEMM working set stay cache/TLB-friendly (a full batch-64 buffer
#: for S-VGG11's conv2 would be 300 MB and thrash).
_IM2ROW_CHUNK_BYTES = 32 * 1024 * 1024


def conv2d_hwc_batch(
    x: np.ndarray,
    weights: np.ndarray,
    stride: int = 1,
    padding: int = 0,
    chunk_frames: Optional[int] = None,
    dtype: np.dtype = np.float64,
) -> np.ndarray:
    """Batched :func:`conv2d_hwc`: BHWC input -> ``(B, out_h, out_w, C_out)``.

    Bit-for-bit per frame: the chunked im2row rows hold the same bytes as
    the per-frame rows, and each chunk of frames goes through one
    ``(chunk * P, K) @ (K, C)`` GEMM.  Each output row's accumulation over
    the shared ``K`` axis is independent of which other rows the GEMM
    computes (BLAS partitions the row axis, never the reduction order), so
    every frame's block is bit-for-bit identical to the scalar
    ``(P, K) @ (K, C)`` product — for any chunking.  Chunks are sized so the
    im2row buffer stays cache-friendly (:data:`_IM2ROW_CHUNK_BYTES`) while
    the weight panels are reused across all frames of a chunk instead of
    re-streamed per frame; ``chunk_frames`` overrides the automatic size.

    ``dtype`` selects the GEMM precision (the
    :class:`~repro.snn.numerics.NumericsPolicy` knob).  The default
    ``float64`` is the bit-for-bit reference path; ``float32`` halves every
    buffer and weight panel, trading the last ulps of the membrane current.
    """
    dtype = np.dtype(dtype)
    weights = np.asarray(weights, dtype=dtype)
    if weights.ndim != 4:
        raise ValueError(f"weights must be (kh, kw, C_in, C_out), got shape {weights.shape}")
    kh, kw, c_in, c_out = weights.shape
    x = np.asarray(x)
    if x.ndim != 4:
        raise ValueError(f"expected a BHWC tensor, got shape {x.shape}")
    if x.shape[-1] != c_in:
        raise ValueError(
            f"input has {x.shape[-1]} channels but weights expect {c_in}"
        )
    batch = x.shape[0]
    out_h = conv_output_size(x.shape[1], kh, stride, padding)
    out_w = conv_output_size(x.shape[2], kw, stride, padding)
    positions, k = out_h * out_w, kh * kw * c_in
    if chunk_frames is None:
        chunk_frames = max(1, _IM2ROW_CHUNK_BYTES // (positions * k * dtype.itemsize))
    flat_weights = weights.reshape(k, c_out)
    # Pad while the spike map is still 1-byte bools; the float conversion
    # happens per chunk, so the kh*kw-fold overlapping reads of the patch
    # walk hit a cache-resident float chunk instead of re-streaming a
    # batch-sized float tensor from memory.
    padded = pad_bhwc(x, padding)
    out = np.empty((batch, out_h, out_w, c_out), dtype=dtype)
    for start in range(0, batch, chunk_frames):
        stop = min(start + chunk_frames, batch)
        chunk = padded[start:stop]
        if chunk.dtype != dtype:
            chunk = chunk.astype(dtype)
        rows = im2row_batch(chunk, (kh, kw), stride, 0)
        flat = rows.reshape((stop - start) * positions, k) @ flat_weights
        out[start:stop] = flat.reshape(stop - start, out_h, out_w, c_out)
    return out


def linear(x: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Dense fully connected layer: ``y = W^T x`` for HWC-flattened inputs.

    ``weights`` has shape ``(in_features, out_features)``.
    """
    x = np.asarray(x, dtype=np.float64).reshape(-1)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 2:
        raise ValueError(f"weights must be 2-D, got shape {weights.shape}")
    if x.shape[0] != weights.shape[0]:
        raise ValueError(
            f"input has {x.shape[0]} features but weights expect {weights.shape[0]}"
        )
    return x @ weights


def linear_batch(
    x: np.ndarray, weights: np.ndarray, dtype: np.dtype = np.float64
) -> np.ndarray:
    """Batched :func:`linear`: ``(B, in_features)`` input -> ``(B, out_features)``.

    The whole batch goes through one ``(B, F) @ (F, C)`` GEMM, so the weight
    matrix — 67 MB for S-VGG11's ``fc1``, 134 MB for ``fc2`` at FP64 —
    streams through the memory hierarchy once per *batch* where the
    per-frame vector-matrix product streams it once per *frame*.  This is
    the single largest win of the batched forward pass.  The GEMM's
    per-output accumulation can differ from the scalar product in the last
    ulp of the membrane *current*; the recorded spikes (the only quantity
    the network consumes and the performance model reads) are gated
    bit-for-bit against the per-frame loop by ``tests/snn`` — an ulp-level
    current difference cannot flip a LIF threshold comparison except at an
    exact-threshold coincidence, which the equivalence tests would surface.

    ``dtype`` selects the GEMM precision (the
    :class:`~repro.snn.numerics.NumericsPolicy` knob); the default
    ``float64`` is the bit-for-bit reference path.
    """
    dtype = np.dtype(dtype)
    x = np.asarray(x, dtype=dtype)
    weights = np.asarray(weights, dtype=dtype)
    if weights.ndim != 2:
        raise ValueError(f"weights must be 2-D, got shape {weights.shape}")
    x = x.reshape(x.shape[0], -1)
    if x.shape[1] != weights.shape[0]:
        raise ValueError(
            f"input has {x.shape[1]} features but weights expect {weights.shape[0]}"
        )
    return x @ weights


#: Spike-map density below which the event-sparse CSR route beats the dense
#: GEMM on this reference stack.  Measured on the paper's S-VGG11 shapes:
#: ``scipy.sparse.csr_matrix(rows) @ W`` wins below ~10-12% active inputs
#: (deep convs and all FC layers at the paper's firing rates, Figure 3a) and
#: loses above (the early convs), so the adaptive ``event_sparse`` forward
#: in :mod:`repro.snn.network` compares each layer's measured input density
#: against this crossover before choosing a route.
SPARSE_DENSITY_CROSSOVER = 0.125


def spike_density(x: np.ndarray) -> float:
    """Fraction of non-zero elements of a spike map (0.0 for empty maps)."""
    x = np.asarray(x)
    if x.size == 0:
        return 0.0
    return np.count_nonzero(x) / x.size


def conv2d_hwc_batch_sparse(
    x: np.ndarray,
    weights: np.ndarray,
    stride: int = 1,
    padding: int = 0,
    dtype: np.dtype = np.float32,
) -> np.ndarray:
    """Event-sparse batched convolution: CSR spike rows against dense weights.

    The software analogue of the paper's sparse vector-product streaming:
    instead of densifying the boolean spike map into a float im2row buffer,
    the im2row rows stay boolean and are compressed into a CSR matrix whose
    stored entries are exactly the *active* inputs — the GEMM then touches
    one weight row per event, so arithmetic cost scales with nnz instead of
    the dense ``B*P*K`` volume.  Profitable below
    :data:`SPARSE_DENSITY_CROSSOVER`; callers (the adaptive dispatch in
    :meth:`SpikingNetwork._forward_timestep_batch
    <repro.snn.network.SpikingNetwork>`) are expected to check density first.

    Unlike the dense route this sums float products in CSR traversal order,
    so results agree with :func:`conv2d_hwc_batch` only to rounding — the
    accuracy bound lives in :mod:`repro.snn.numerics`.  Falls back to the
    dense route when scipy is unavailable.
    """
    if _scipy_sparse is None:  # pragma: no cover - scipy is baked into the image
        return conv2d_hwc_batch(x, weights, stride, padding, dtype=dtype)
    dtype = np.dtype(dtype)
    weights = np.asarray(weights, dtype=dtype)
    if weights.ndim != 4:
        raise ValueError(f"weights must be (kh, kw, C_in, C_out), got shape {weights.shape}")
    kh, kw, c_in, c_out = weights.shape
    x = np.asarray(x)
    if x.ndim != 4:
        raise ValueError(f"expected a BHWC tensor, got shape {x.shape}")
    if x.shape[-1] != c_in:
        raise ValueError(
            f"input has {x.shape[-1]} channels but weights expect {c_in}"
        )
    batch = x.shape[0]
    out_h = conv_output_size(x.shape[1], kh, stride, padding)
    out_w = conv_output_size(x.shape[2], kw, stride, padding)
    positions, k = out_h * out_w, kh * kw * c_in
    # im2row on the 1-byte boolean map: patch extraction copies bits, no
    # float conversion ever materializes the dense buffer.
    rows = im2row_batch(pad_bhwc(x != 0, padding), (kh, kw), stride, 0)
    events = _scipy_sparse.csr_matrix(rows.reshape(batch * positions, k), dtype=dtype)
    flat = events @ weights.reshape(k, c_out)
    return np.asarray(flat).reshape(batch, out_h, out_w, c_out)


def linear_batch_sparse(
    x: np.ndarray, weights: np.ndarray, dtype: np.dtype = np.float32
) -> np.ndarray:
    """Event-sparse batched fully connected layer.

    Gathers only the weight rows of *active* inputs: for the paper's FC
    layers at 3-6% firing rates this reads a few hundred rows of a 4096-row
    weight matrix instead of streaming all of it through a dense GEMM.
    Same rounding caveat as :func:`conv2d_hwc_batch_sparse`; without scipy a
    per-frame ``w[active].sum`` gather provides the same event scaling.
    """
    dtype = np.dtype(dtype)
    weights = np.asarray(weights, dtype=dtype)
    if weights.ndim != 2:
        raise ValueError(f"weights must be 2-D, got shape {weights.shape}")
    x = np.asarray(x)
    flat = (x != 0).reshape(x.shape[0], -1)
    if flat.shape[1] != weights.shape[0]:
        raise ValueError(
            f"input has {flat.shape[1]} features but weights expect {weights.shape[0]}"
        )
    if _scipy_sparse is not None:
        events = _scipy_sparse.csr_matrix(flat, dtype=dtype)
        return np.asarray(events @ weights)
    out = np.zeros((flat.shape[0], weights.shape[1]), dtype=dtype)
    for b in range(flat.shape[0]):
        active = np.flatnonzero(flat[b])
        if active.size:
            out[b] = weights[active].sum(axis=0, dtype=dtype)
    return out


def maxpool2d_hwc(x: np.ndarray, kernel: int = 2, stride: int = 2) -> np.ndarray:
    """Max pooling over the spatial dimensions of an HWC tensor.

    On boolean spike tensors this reduces to a logical OR over the window,
    which is how spike pooling is normally realized.
    """
    x = np.asarray(x)
    height, width, channels = x.shape
    out_h = (height - kernel) // stride + 1
    out_w = (width - kernel) // stride + 1
    out = np.empty((out_h, out_w, channels), dtype=x.dtype)
    for oy in range(out_h):
        for ox in range(out_w):
            window = x[oy * stride : oy * stride + kernel, ox * stride : ox * stride + kernel, :]
            out[oy, ox] = window.max(axis=(0, 1))
    return out


def maxpool2d_hwc_batch(x: np.ndarray, kernel: int = 2, stride: int = 2) -> np.ndarray:
    """Batched :func:`maxpool2d_hwc` over a BHWC tensor (exact per frame)."""
    x = np.asarray(x)
    if x.ndim != 4:
        raise ValueError(f"expected a BHWC tensor, got shape {x.shape}")
    batch, height, width, channels = x.shape
    out_h = (height - kernel) // stride + 1
    out_w = (width - kernel) // stride + 1
    out = np.empty((batch, out_h, out_w, channels), dtype=x.dtype)
    for oy in range(out_h):
        for ox in range(out_w):
            window = x[:, oy * stride : oy * stride + kernel, ox * stride : ox * stride + kernel, :]
            out[:, oy, ox] = window.max(axis=(1, 2))
    return out


def avgpool2d_hwc(x: np.ndarray, kernel: int = 2, stride: int = 2) -> np.ndarray:
    """Average pooling over the spatial dimensions of an HWC tensor."""
    x = np.asarray(x, dtype=np.float64)
    height, width, channels = x.shape
    out_h = (height - kernel) // stride + 1
    out_w = (width - kernel) // stride + 1
    out = np.empty((out_h, out_w, channels), dtype=np.float64)
    for oy in range(out_h):
        for ox in range(out_w):
            window = x[oy * stride : oy * stride + kernel, ox * stride : ox * stride + kernel, :]
            out[oy, ox] = window.mean(axis=(0, 1))
    return out


def avgpool2d_hwc_batch(x: np.ndarray, kernel: int = 2, stride: int = 2) -> np.ndarray:
    """Batched :func:`avgpool2d_hwc` over a BHWC tensor (exact per frame)."""
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 4:
        raise ValueError(f"expected a BHWC tensor, got shape {x.shape}")
    batch, height, width, channels = x.shape
    out_h = (height - kernel) // stride + 1
    out_w = (width - kernel) // stride + 1
    out = np.empty((batch, out_h, out_w, channels), dtype=np.float64)
    for oy in range(out_h):
        for ox in range(out_w):
            window = x[:, oy * stride : oy * stride + kernel, ox * stride : ox * stride + kernel, :]
            out[:, oy, ox] = window.mean(axis=(1, 2))
    return out
