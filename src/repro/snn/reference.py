"""NumPy golden-reference implementations of the SNN layer arithmetic.

These functions are the "ground truth" against which the cluster kernels of
:mod:`repro.kernels` are validated.  They deliberately use a different
computational route (dense im2col matrix products) than the kernels (gathers
over compressed index arrays) so that agreement between the two is a
meaningful correctness check.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def pad_hwc(x: np.ndarray, padding: int) -> np.ndarray:
    """Zero-pad the two spatial dimensions of an HWC tensor."""
    if padding < 0:
        raise ValueError(f"padding must be non-negative, got {padding}")
    if padding == 0:
        return np.asarray(x)
    return np.pad(np.asarray(x), ((padding, padding), (padding, padding), (0, 0)))


def conv_output_size(in_size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    out = (in_size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution produces non-positive output size for in={in_size}, "
            f"kernel={kernel}, stride={stride}, padding={padding}"
        )
    return out


def im2row(x: np.ndarray, kernel: Tuple[int, int], stride: int, padding: int) -> np.ndarray:
    """Rearrange an HWC tensor into im2row form.

    Returns an array of shape ``(out_h * out_w, kh * kw * C)`` where each row
    contains the receptive field of one output position in (kh, kw, C) order —
    the same layout SpikeStream produces with its 2-D DMA transfer for the
    spike-encoding first layer (Section III-F).
    """
    x = np.asarray(x)
    if x.ndim != 3:
        raise ValueError(f"expected an HWC tensor, got shape {x.shape}")
    kh, kw = kernel
    padded = pad_hwc(x, padding)
    in_h, in_w, channels = padded.shape
    out_h = (in_h - kh) // stride + 1
    out_w = (in_w - kw) // stride + 1
    rows = np.empty((out_h * out_w, kh * kw * channels), dtype=padded.dtype)
    for oy in range(out_h):
        for ox in range(out_w):
            patch = padded[oy * stride : oy * stride + kh, ox * stride : ox * stride + kw, :]
            rows[oy * out_w + ox] = patch.reshape(-1)
    return rows


def conv2d_hwc(
    x: np.ndarray,
    weights: np.ndarray,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Dense 2-D convolution on HWC tensors.

    Parameters
    ----------
    x:
        Input tensor of shape ``(H, W, C_in)``; may be boolean spikes or real
        valued input currents.
    weights:
        Filter bank of shape ``(kh, kw, C_in, C_out)``.

    Returns
    -------
    Output currents of shape ``(out_h, out_w, C_out)``.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 4:
        raise ValueError(f"weights must be (kh, kw, C_in, C_out), got shape {weights.shape}")
    kh, kw, c_in, c_out = weights.shape
    x = np.asarray(x)
    if x.shape[-1] != c_in:
        raise ValueError(
            f"input has {x.shape[-1]} channels but weights expect {c_in}"
        )
    rows = im2row(x.astype(np.float64), (kh, kw), stride, padding)
    out_h = conv_output_size(x.shape[0], kh, stride, padding)
    out_w = conv_output_size(x.shape[1], kw, stride, padding)
    flat = rows @ weights.reshape(kh * kw * c_in, c_out)
    return flat.reshape(out_h, out_w, c_out)


def linear(x: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Dense fully connected layer: ``y = W^T x`` for HWC-flattened inputs.

    ``weights`` has shape ``(in_features, out_features)``.
    """
    x = np.asarray(x, dtype=np.float64).reshape(-1)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 2:
        raise ValueError(f"weights must be 2-D, got shape {weights.shape}")
    if x.shape[0] != weights.shape[0]:
        raise ValueError(
            f"input has {x.shape[0]} features but weights expect {weights.shape[0]}"
        )
    return x @ weights


def maxpool2d_hwc(x: np.ndarray, kernel: int = 2, stride: int = 2) -> np.ndarray:
    """Max pooling over the spatial dimensions of an HWC tensor.

    On boolean spike tensors this reduces to a logical OR over the window,
    which is how spike pooling is normally realized.
    """
    x = np.asarray(x)
    height, width, channels = x.shape
    out_h = (height - kernel) // stride + 1
    out_w = (width - kernel) // stride + 1
    out = np.empty((out_h, out_w, channels), dtype=x.dtype)
    for oy in range(out_h):
        for ox in range(out_w):
            window = x[oy * stride : oy * stride + kernel, ox * stride : ox * stride + kernel, :]
            out[oy, ox] = window.max(axis=(0, 1))
    return out


def avgpool2d_hwc(x: np.ndarray, kernel: int = 2, stride: int = 2) -> np.ndarray:
    """Average pooling over the spatial dimensions of an HWC tensor."""
    x = np.asarray(x, dtype=np.float64)
    height, width, channels = x.shape
    out_h = (height - kernel) // stride + 1
    out_w = (width - kernel) // stride + 1
    out = np.empty((out_h, out_w, channels), dtype=np.float64)
    for oy in range(out_h):
        for ox in range(out_w):
            window = x[oy * stride : oy * stride + kernel, ox * stride : ox * stride + kernel, :]
            out[oy, ox] = window.mean(axis=(0, 1))
    return out
