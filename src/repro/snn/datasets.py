"""Synthetic datasets and statistical spike-activity generators.

The paper evaluates on CIFAR-10 images with a temporally-trained S-VGG11.
Neither the dataset nor the trained weights are needed to reproduce the
performance, utilization and energy results — those depend only on tensor
shapes and per-layer firing rates.  This module therefore provides:

* :class:`SyntheticCIFAR10` — smooth random 32x32x3 images with labels, for
  the functional examples and tests, and
* :func:`synthetic_compressed_ifmap` / :func:`synthetic_layer_activity` —
  statistically generated compressed ifmaps whose firing rates follow the
  paper's per-layer activity profile, used by the figure-level experiments
  over a batch of 128 frames.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..formats.convert import compress_ifmap, compress_vector
from ..formats.csr_fiber import CompressedIfmap, CompressedVector
from ..types import INDEX_BYTES_DEFAULT, TensorShape
from ..utils.rng import SeedLike, make_rng, spawn_rngs
from .svgg11 import SVGG11_LAYER_FIRING_RATES, svgg11_layer_shapes


@dataclass
class SyntheticCIFAR10:
    """A generator of CIFAR-10-like RGB frames.

    Images are produced by low-pass filtering white noise so they exhibit the
    spatial correlation of natural images (which matters for the firing
    pattern of the encoding layer) and are normalized to [0, 1].
    """

    num_classes: int = 10
    image_shape: TensorShape = field(default_factory=lambda: TensorShape(32, 32, 3))
    seed: SeedLike = 2025
    smoothing: int = 3

    def __post_init__(self) -> None:
        if self.num_classes <= 1:
            raise ValueError(f"num_classes must be > 1, got {self.num_classes}")
        if self.smoothing < 1:
            raise ValueError(f"smoothing must be >= 1, got {self.smoothing}")

    def _smooth(self, image: np.ndarray) -> np.ndarray:
        kernel = self.smoothing
        if kernel == 1:
            return image
        padded = np.pad(image, ((kernel, kernel), (kernel, kernel), (0, 0)), mode="wrap")
        out = np.zeros_like(image)
        count = 0
        for dy in range(-kernel // 2, kernel // 2 + 1):
            for dx in range(-kernel // 2, kernel // 2 + 1):
                out += padded[
                    kernel + dy : kernel + dy + image.shape[0],
                    kernel + dx : kernel + dx + image.shape[1],
                    :,
                ]
                count += 1
        return out / count

    def sample(self, count: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(images, labels)`` with ``images`` of shape (count, H, W, C)."""
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        rngs = spawn_rngs(self.seed, count)
        shape = self.image_shape.as_tuple()
        images = np.empty((count,) + shape, dtype=np.float64)
        labels = np.empty(count, dtype=np.int64)
        for i, rng in enumerate(rngs):
            raw = rng.random(shape)
            smooth = self._smooth(raw)
            low, high = smooth.min(), smooth.max()
            images[i] = (smooth - low) / (high - low + 1e-12)
            labels[i] = rng.integers(0, self.num_classes)
        return images, labels

    def __iter__(self) -> Iterator[Tuple[np.ndarray, int]]:
        """Yield an endless stream of (image, label) pairs."""
        index = 0
        while True:
            images, labels = SyntheticCIFAR10(
                num_classes=self.num_classes,
                image_shape=self.image_shape,
                seed=(hash((str(self.seed), index)) & 0x7FFFFFFF),
                smoothing=self.smoothing,
            ).sample(1)
            yield images[0], int(labels[0])
            index += 1


def synthetic_compressed_ifmap(
    shape: TensorShape,
    firing_rate: float,
    rng: SeedLike = None,
    index_bytes: int = INDEX_BYTES_DEFAULT,
) -> CompressedIfmap:
    """Generate a random compressed ifmap with the requested firing rate.

    Spikes are drawn i.i.d. Bernoulli per neuron, which matches the dynamic
    sparsity assumption behind the paper's batch-of-128 evaluation.
    """
    if not 0.0 <= firing_rate <= 1.0:
        raise ValueError(f"firing_rate must be in [0, 1], got {firing_rate}")
    rng = make_rng(rng)
    dense = rng.random(shape.as_tuple()) < firing_rate
    return compress_ifmap(dense, index_bytes=index_bytes)


def synthetic_compressed_vector(
    length: int,
    firing_rate: float,
    rng: SeedLike = None,
    index_bytes: int = INDEX_BYTES_DEFAULT,
) -> CompressedVector:
    """Generate a random compressed FC-layer spike vector."""
    if not 0.0 <= firing_rate <= 1.0:
        raise ValueError(f"firing_rate must be in [0, 1], got {firing_rate}")
    rng = make_rng(rng)
    dense = rng.random(length) < firing_rate
    return compress_vector(dense, index_bytes=index_bytes)


@dataclass
class LayerActivitySample:
    """Synthetic activity of one weighted S-VGG11 layer for one input frame."""

    name: str
    kind: str
    input_shape: TensorShape
    padded_input_shape: TensorShape
    output_shape: TensorShape
    kernel_size: int
    stride: int
    padding: int
    encodes_input: bool
    firing_rate: float
    compressed_input: Optional[CompressedIfmap]
    compressed_vector: Optional[CompressedVector]


def synthetic_layer_activity(
    batch_size: int = 1,
    seed: SeedLike = 2025,
    firing_rates: Optional[Dict[str, float]] = None,
    layers: Optional[List[str]] = None,
    index_bytes: int = INDEX_BYTES_DEFAULT,
) -> List[List[LayerActivitySample]]:
    """Generate per-frame, per-layer synthetic activity for S-VGG11.

    Returns a list with one entry per frame; each entry is the list of
    :class:`LayerActivitySample` for the requested layers (all weighted
    layers by default).  Firing rates default to the paper's activity
    profile (:data:`repro.snn.svgg11.SVGG11_LAYER_FIRING_RATES`).
    """
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    rates = dict(SVGG11_LAYER_FIRING_RATES)
    if firing_rates:
        rates.update(firing_rates)
    descriptions = svgg11_layer_shapes()
    if layers is not None:
        wanted = set(layers)
        descriptions = [d for d in descriptions if d["name"] in wanted]
        missing = wanted - {d["name"] for d in descriptions}
        if missing:
            raise ValueError(f"unknown layer names: {sorted(missing)}")
    frame_rngs = spawn_rngs(seed, batch_size)

    batch: List[List[LayerActivitySample]] = []
    for rng in frame_rngs:
        frame_samples: List[LayerActivitySample] = []
        for desc in descriptions:
            rate = rates[desc["name"]]
            compressed_input = None
            compressed_vector = None
            if desc["kind"] == "conv" and not desc["encodes_input"]:
                # Spikes only occur inside the unpadded region; the zero
                # padding ring contributes pointer entries but no spikes.
                unpadded = synthetic_compressed_ifmap(
                    desc["input_shape"], rate, rng, index_bytes=index_bytes
                )
                from ..formats.convert import compress_ifmap, decompress_ifmap

                padded_dense = np.pad(
                    decompress_ifmap(unpadded),
                    ((desc["padding"], desc["padding"]), (desc["padding"], desc["padding"]), (0, 0)),
                )
                compressed_input = compress_ifmap(padded_dense, index_bytes=index_bytes)
            elif desc["kind"] == "linear":
                compressed_vector = synthetic_compressed_vector(
                    desc["input_shape"].numel, rate, rng, index_bytes=index_bytes
                )
            frame_samples.append(
                LayerActivitySample(
                    name=desc["name"],
                    kind=desc["kind"],
                    input_shape=desc["input_shape"],
                    padded_input_shape=desc["padded_input_shape"],
                    output_shape=desc["output_shape"],
                    kernel_size=desc["kernel_size"],
                    stride=desc["stride"],
                    padding=desc["padding"],
                    encodes_input=desc["encodes_input"],
                    firing_rate=rate,
                    compressed_input=compressed_input,
                    compressed_vector=compressed_vector,
                )
            )
        batch.append(frame_samples)
    return batch
