"""Spiking network container and functional forward pass.

:class:`SpikingNetwork` chains layers, keeps per-layer LIF membrane state
across timesteps and records, for every weighted layer and timestep, the
input spike map it consumed and the output spikes it produced.  Those records
(:class:`LayerRecord`) are exactly what the cluster kernels need as their
workload description.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..types import LayerKind, TensorShape
from .layers import Flatten, SpikingAvgPool2d, SpikingConv2d, SpikingLinear, SpikingMaxPool2d
from .neuron import LIFState, lif_step
from .reference import avgpool2d_hwc, conv2d_hwc, linear, maxpool2d_hwc

Layer = Union[SpikingConv2d, SpikingLinear, SpikingMaxPool2d, SpikingAvgPool2d, Flatten]

WEIGHTED_KINDS = (LayerKind.CONV, LayerKind.LINEAR)


@dataclass
class LayerRecord:
    """What a weighted layer consumed and produced during one timestep."""

    layer_index: int
    name: str
    kind: LayerKind
    timestep: int
    input_shape: TensorShape
    output_shape: TensorShape
    input_spikes: Optional[np.ndarray]
    input_currents: Optional[np.ndarray]
    output_spikes: np.ndarray

    @property
    def input_firing_rate(self) -> float:
        """Fraction of active input neurons (1.0 for the dense encoding layer)."""
        if self.input_spikes is None:
            return 1.0
        return float(np.count_nonzero(self.input_spikes)) / max(self.input_spikes.size, 1)

    @property
    def output_firing_rate(self) -> float:
        """Fraction of active output neurons."""
        return float(np.count_nonzero(self.output_spikes)) / max(self.output_spikes.size, 1)


@dataclass
class NetworkActivity:
    """All layer records of a multi-timestep forward pass on one input frame."""

    records: List[LayerRecord] = field(default_factory=list)

    def for_layer(self, layer_index: int) -> List[LayerRecord]:
        """Records of a specific weighted layer across timesteps."""
        return [r for r in self.records if r.layer_index == layer_index]

    def for_timestep(self, timestep: int) -> List[LayerRecord]:
        """Records of all weighted layers for a specific timestep."""
        return [r for r in self.records if r.timestep == timestep]

    @property
    def weighted_layer_indices(self) -> List[int]:
        """Sorted indices of weighted layers that produced records."""
        return sorted({r.layer_index for r in self.records})


class SpikingNetwork:
    """A feed-forward spiking network built from the layers in :mod:`repro.snn.layers`."""

    def __init__(self, layers: Sequence[Layer], input_shape: TensorShape, name: str = "snn"):
        self.layers: List[Layer] = list(layers)
        self.input_shape = input_shape
        self.name = name
        self._states: Dict[int, LIFState] = {}
        self._validate_shapes()
        self.reset_state()

    def _validate_shapes(self) -> None:
        shape = self.input_shape
        self._layer_input_shapes: List[TensorShape] = []
        self._layer_output_shapes: List[TensorShape] = []
        for layer in self.layers:
            self._layer_input_shapes.append(shape)
            shape = layer.output_shape(shape)
            self._layer_output_shapes.append(shape)
        self.output_shape = shape

    def initialize(self, rng=None) -> None:
        """Randomly initialize all weighted layers."""
        from ..utils.rng import make_rng

        rng = make_rng(rng)
        for layer in self.layers:
            if layer.kind in WEIGHTED_KINDS:
                layer.initialize(rng)

    def reset_state(self) -> None:
        """Reset all membrane potentials to zero (start of a new input frame)."""
        self._states = {}
        for index, layer in enumerate(self.layers):
            if layer.kind in WEIGHTED_KINDS:
                out_shape = self._layer_output_shapes[index]
                if layer.kind is LayerKind.CONV:
                    state_shape = out_shape.as_tuple()
                else:
                    state_shape = (out_shape.channels,)
                self._states[index] = LIFState.zeros(state_shape)

    def layer_input_shape(self, index: int) -> TensorShape:
        """Input shape of layer ``index``."""
        return self._layer_input_shapes[index]

    def layer_output_shape(self, index: int) -> TensorShape:
        """Output shape of layer ``index``."""
        return self._layer_output_shapes[index]

    @property
    def weighted_layers(self) -> List[int]:
        """Indices of layers carrying weights (conv and FC)."""
        return [i for i, layer in enumerate(self.layers) if layer.kind in WEIGHTED_KINDS]

    def membrane_state(self, index: int) -> LIFState:
        """Return the LIF state of weighted layer ``index``."""
        return self._states[index]

    def forward_timestep(self, frame: np.ndarray, timestep: int = 0) -> NetworkActivity:
        """Run one timestep of the network on ``frame`` and record layer activity.

        ``frame`` is the raw HWC image for the encoding layer (real-valued) or
        a boolean spike map when the first layer is not an encoder.
        """
        activity = NetworkActivity()
        current: np.ndarray = np.asarray(frame)
        for index, layer in enumerate(self.layers):
            if layer.kind is LayerKind.CONV:
                currents = conv2d_hwc(
                    current, layer.require_weights(), stride=layer.stride, padding=layer.padding
                )
                state, spikes = lif_step(self._states[index], currents, layer.lif)
                self._states[index] = state
                activity.records.append(
                    LayerRecord(
                        layer_index=index,
                        name=layer.name,
                        kind=layer.kind,
                        timestep=timestep,
                        input_shape=self._layer_input_shapes[index],
                        output_shape=self._layer_output_shapes[index],
                        input_spikes=None if layer.encodes_input else current.astype(bool),
                        input_currents=current if layer.encodes_input else None,
                        output_spikes=spikes,
                    )
                )
                current = spikes
            elif layer.kind is LayerKind.LINEAR:
                currents = linear(current, layer.require_weights())
                state, spikes = lif_step(self._states[index], currents, layer.lif)
                self._states[index] = state
                activity.records.append(
                    LayerRecord(
                        layer_index=index,
                        name=layer.name,
                        kind=layer.kind,
                        timestep=timestep,
                        input_shape=self._layer_input_shapes[index],
                        output_shape=self._layer_output_shapes[index],
                        input_spikes=np.asarray(current, dtype=bool).reshape(-1),
                        input_currents=None,
                        output_spikes=spikes,
                    )
                )
                current = spikes
            elif layer.kind is LayerKind.MAXPOOL:
                current = maxpool2d_hwc(current, layer.kernel_size, layer.stride)
            elif layer.kind is LayerKind.AVGPOOL:
                current = avgpool2d_hwc(current, layer.kernel_size, layer.stride)
            elif layer.kind is LayerKind.FLATTEN:
                current = np.asarray(current).reshape(-1)
            else:  # pragma: no cover - defensive
                raise NotImplementedError(f"unsupported layer kind {layer.kind}")
        return activity

    def forward(self, frame: np.ndarray, timesteps: int = 1, reset: bool = True) -> NetworkActivity:
        """Run the network for several timesteps on a single input frame.

        With direct (first-layer) encoding the same frame is presented at
        every timestep, as in the paper's 500-timestep accelerator comparison.
        """
        if timesteps <= 0:
            raise ValueError(f"timesteps must be positive, got {timesteps}")
        if reset:
            self.reset_state()
        activity = NetworkActivity()
        for t in range(timesteps):
            step_activity = self.forward_timestep(frame, timestep=t)
            activity.records.extend(step_activity.records)
        return activity

    def predict(self, frame: np.ndarray, timesteps: int = 1) -> int:
        """Classify a frame by accumulating output-layer spikes over time."""
        activity = self.forward(frame, timesteps=timesteps)
        output_index = self.weighted_layers[-1]
        counts = np.zeros(self._layer_output_shapes[output_index].channels, dtype=np.int64)
        for record in activity.for_layer(output_index):
            counts += record.output_spikes.astype(np.int64).reshape(-1)
        return int(np.argmax(counts))
