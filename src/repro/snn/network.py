"""Spiking network container and functional forward pass.

:class:`SpikingNetwork` chains layers, keeps per-layer LIF membrane state
across timesteps and records, for every weighted layer and timestep, the
input spike map it consumed and the output spikes it produced.  Those records
(:class:`LayerRecord`) are exactly what the cluster kernels need as their
workload description.

Batch is the native execution unit: :meth:`SpikingNetwork.forward_batch`
runs ``B`` frames through the network in one vectorized NumPy pass (batched
im2row convolutions, batched LIF updates, batched pooling), recording one
:class:`BatchLayerRecord` of stacked spike tensors per weighted layer and
timestep.  The per-frame :meth:`SpikingNetwork.forward` is kept as the
bit-for-bit reference — every frame's slice of a batched record equals the
corresponding per-frame record exactly.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, fields as dataclass_fields
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..types import LayerKind, TensorShape
from .layers import Flatten, SpikingAvgPool2d, SpikingConv2d, SpikingLinear, SpikingMaxPool2d
from .neuron import LIFState, lif_step, lif_step_batch
from .numerics import NumericsPolicy, resolve
from .reference import (
    SPARSE_DENSITY_CROSSOVER,
    avgpool2d_hwc,
    avgpool2d_hwc_batch,
    conv2d_hwc,
    conv2d_hwc_batch,
    conv2d_hwc_batch_sparse,
    linear,
    linear_batch,
    linear_batch_sparse,
    maxpool2d_hwc,
    maxpool2d_hwc_batch,
    spike_density,
)

Layer = Union[SpikingConv2d, SpikingLinear, SpikingMaxPool2d, SpikingAvgPool2d, Flatten]

WEIGHTED_KINDS = (LayerKind.CONV, LayerKind.LINEAR)


@dataclass
class LayerRecord:
    """What a weighted layer consumed and produced during one timestep."""

    layer_index: int
    name: str
    kind: LayerKind
    timestep: int
    input_shape: TensorShape
    output_shape: TensorShape
    input_spikes: Optional[np.ndarray]
    input_currents: Optional[np.ndarray]
    output_spikes: np.ndarray

    @property
    def input_firing_rate(self) -> float:
        """Fraction of active input neurons (1.0 for the dense encoding layer)."""
        if self.input_spikes is None:
            return 1.0
        return float(np.count_nonzero(self.input_spikes)) / max(self.input_spikes.size, 1)

    @property
    def output_firing_rate(self) -> float:
        """Fraction of active output neurons."""
        return float(np.count_nonzero(self.output_spikes)) / max(self.output_spikes.size, 1)


@dataclass
class NetworkActivity:
    """All layer records of a multi-timestep forward pass on one input frame."""

    records: List[LayerRecord] = field(default_factory=list)

    def for_layer(self, layer_index: int) -> List[LayerRecord]:
        """Records of a specific weighted layer across timesteps."""
        return [r for r in self.records if r.layer_index == layer_index]

    def for_timestep(self, timestep: int) -> List[LayerRecord]:
        """Records of all weighted layers for a specific timestep."""
        return [r for r in self.records if r.timestep == timestep]

    @property
    def weighted_layer_indices(self) -> List[int]:
        """Sorted indices of weighted layers that produced records."""
        return sorted({r.layer_index for r in self.records})


@dataclass
class BatchLayerRecord:
    """What a weighted layer consumed/produced for a whole batch in one timestep.

    The stacked counterpart of :class:`LayerRecord`: every spike/current
    tensor carries a leading batch axis, and ``frame(b)`` slices out the
    per-frame record (bit-for-bit what :meth:`SpikingNetwork.forward` would
    have recorded for that frame).
    """

    layer_index: int
    name: str
    kind: LayerKind
    timestep: int
    input_shape: TensorShape
    output_shape: TensorShape
    input_spikes: Optional[np.ndarray]
    input_currents: Optional[np.ndarray]
    output_spikes: np.ndarray

    @property
    def batch_size(self) -> int:
        """Number of frames stacked in this record."""
        return int(self.output_spikes.shape[0])

    def frame(self, index: int) -> LayerRecord:
        """The per-frame :class:`LayerRecord` of frame ``index``."""
        return LayerRecord(
            layer_index=self.layer_index,
            name=self.name,
            kind=self.kind,
            timestep=self.timestep,
            input_shape=self.input_shape,
            output_shape=self.output_shape,
            input_spikes=None if self.input_spikes is None else self.input_spikes[index],
            input_currents=None if self.input_currents is None else self.input_currents[index],
            output_spikes=self.output_spikes[index],
        )


@dataclass
class BatchNetworkActivity:
    """All batched layer records of a multi-timestep forward pass on B frames."""

    records: List[BatchLayerRecord] = field(default_factory=list)

    @property
    def batch_size(self) -> int:
        """Number of frames the activity covers (0 when empty)."""
        if not self.records:
            return 0
        return self.records[0].batch_size

    def for_layer(self, layer_index: int) -> List[BatchLayerRecord]:
        """Records of a specific weighted layer across timesteps."""
        return [r for r in self.records if r.layer_index == layer_index]

    def for_name(self, name: str) -> List[BatchLayerRecord]:
        """Records of the weighted layer called ``name`` across timesteps."""
        return [r for r in self.records if r.name == name]

    def frame_activity(self, index: int) -> NetworkActivity:
        """The per-frame :class:`NetworkActivity` of frame ``index``.

        Record order matches what per-frame :meth:`SpikingNetwork.forward`
        produces (timestep-major, layers in network order within a timestep).
        """
        return NetworkActivity(records=[record.frame(index) for record in self.records])


class SpikingNetwork:
    """A feed-forward spiking network built from the layers in :mod:`repro.snn.layers`."""

    def __init__(self, layers: Sequence[Layer], input_shape: TensorShape, name: str = "snn"):
        self.layers: List[Layer] = list(layers)
        self.input_shape = input_shape
        self.name = name
        self._states: Dict[int, LIFState] = {}
        self._validate_shapes()
        self.reset_state()

    def _validate_shapes(self) -> None:
        shape = self.input_shape
        self._layer_input_shapes: List[TensorShape] = []
        self._layer_output_shapes: List[TensorShape] = []
        for layer in self.layers:
            self._layer_input_shapes.append(shape)
            shape = layer.output_shape(shape)
            self._layer_output_shapes.append(shape)
        self.output_shape = shape

    def initialize(self, rng=None) -> None:
        """Randomly initialize all weighted layers."""
        from ..utils.rng import make_rng

        rng = make_rng(rng)
        for layer in self.layers:
            if layer.kind in WEIGHTED_KINDS:
                layer.initialize(rng)

    def reset_state(self) -> None:
        """Reset all membrane potentials to zero (start of a new input frame)."""
        self._states = {}
        for index, layer in enumerate(self.layers):
            if layer.kind in WEIGHTED_KINDS:
                out_shape = self._layer_output_shapes[index]
                if layer.kind is LayerKind.CONV:
                    state_shape = out_shape.as_tuple()
                else:
                    state_shape = (out_shape.channels,)
                self._states[index] = LIFState.zeros(state_shape)

    def layer_input_shape(self, index: int) -> TensorShape:
        """Input shape of layer ``index``."""
        return self._layer_input_shapes[index]

    def layer_output_shape(self, index: int) -> TensorShape:
        """Output shape of layer ``index``."""
        return self._layer_output_shapes[index]

    @property
    def weighted_layers(self) -> List[int]:
        """Indices of layers carrying weights (conv and FC)."""
        return [i for i, layer in enumerate(self.layers) if layer.kind in WEIGHTED_KINDS]

    def membrane_state(self, index: int) -> LIFState:
        """Return the LIF state of weighted layer ``index``."""
        return self._states[index]

    def forward_timestep(self, frame: np.ndarray, timestep: int = 0) -> NetworkActivity:
        """Run one timestep of the network on ``frame`` and record layer activity.

        ``frame`` is the raw HWC image for the encoding layer (real-valued) or
        a boolean spike map when the first layer is not an encoder.
        """
        activity = NetworkActivity()
        current: np.ndarray = np.asarray(frame)
        for index, layer in enumerate(self.layers):
            if layer.kind is LayerKind.CONV:
                currents = conv2d_hwc(
                    current, layer.require_weights(), stride=layer.stride, padding=layer.padding
                )
                state, spikes = lif_step(self._states[index], currents, layer.lif)
                self._states[index] = state
                activity.records.append(
                    LayerRecord(
                        layer_index=index,
                        name=layer.name,
                        kind=layer.kind,
                        timestep=timestep,
                        input_shape=self._layer_input_shapes[index],
                        output_shape=self._layer_output_shapes[index],
                        input_spikes=None if layer.encodes_input else current.astype(bool),
                        input_currents=current if layer.encodes_input else None,
                        output_spikes=spikes,
                    )
                )
                current = spikes
            elif layer.kind is LayerKind.LINEAR:
                currents = linear(current, layer.require_weights())
                state, spikes = lif_step(self._states[index], currents, layer.lif)
                self._states[index] = state
                activity.records.append(
                    LayerRecord(
                        layer_index=index,
                        name=layer.name,
                        kind=layer.kind,
                        timestep=timestep,
                        input_shape=self._layer_input_shapes[index],
                        output_shape=self._layer_output_shapes[index],
                        input_spikes=np.asarray(current, dtype=bool).reshape(-1),
                        input_currents=None,
                        output_spikes=spikes,
                    )
                )
                current = spikes
            elif layer.kind is LayerKind.MAXPOOL:
                current = maxpool2d_hwc(current, layer.kernel_size, layer.stride)
            elif layer.kind is LayerKind.AVGPOOL:
                current = avgpool2d_hwc(current, layer.kernel_size, layer.stride)
            elif layer.kind is LayerKind.FLATTEN:
                current = np.asarray(current).reshape(-1)
            else:  # pragma: no cover - defensive
                raise NotImplementedError(f"unsupported layer kind {layer.kind}")
        return activity

    def forward(self, frame: np.ndarray, timesteps: int = 1, reset: bool = True) -> NetworkActivity:
        """Run the network for several timesteps on a single input frame.

        With direct (first-layer) encoding the same frame is presented at
        every timestep, as in the paper's 500-timestep accelerator comparison.
        """
        if timesteps <= 0:
            raise ValueError(f"timesteps must be positive, got {timesteps}")
        if reset:
            self.reset_state()
        activity = NetworkActivity()
        for t in range(timesteps):
            step_activity = self.forward_timestep(frame, timestep=t)
            activity.records.extend(step_activity.records)
        return activity

    def predict(self, frame: np.ndarray, timesteps: int = 1) -> int:
        """Classify a frame by accumulating output-layer spikes over time."""
        activity = self.forward(frame, timesteps=timesteps)
        output_index = self.weighted_layers[-1]
        counts = np.zeros(self._layer_output_shapes[output_index].channels, dtype=np.int64)
        for record in activity.for_layer(output_index):
            counts += record.output_spikes.astype(np.int64).reshape(-1)
        return int(np.argmax(counts))

    # ------------------------------------------------------------------ #
    # Batched execution
    # ------------------------------------------------------------------ #
    def _batch_states(self, batch_size: int, dtype=np.float64) -> Dict[int, LIFState]:
        """Fresh zero membrane states with a leading batch axis."""
        states: Dict[int, LIFState] = {}
        for index, layer in enumerate(self.layers):
            if layer.kind in WEIGHTED_KINDS:
                out_shape = self._layer_output_shapes[index]
                if layer.kind is LayerKind.CONV:
                    state_shape = (batch_size,) + out_shape.as_tuple()
                else:
                    state_shape = (batch_size, out_shape.channels)
                states[index] = LIFState.zeros(state_shape, dtype=dtype)
        return states

    def _cast_weights(self, index: int, weights: np.ndarray, dtype: np.dtype) -> np.ndarray:
        """Weights of layer ``index`` at ``dtype``, cached by array identity.

        FP32 forward passes would otherwise re-cast S-VGG11's several
        hundred MB of FP64 weights on every call.  The cache key mirrors the
        fingerprint memo: an entry is only reused while the layer still
        binds the *same* weight array (`is`), so :meth:`initialize` or a
        training rebind invalidates it naturally.  Cast copies are frozen so
        a caller can never mutate the cache behind the layer's back.
        """
        if weights.dtype == dtype:
            return weights
        cache = getattr(self, "_weight_cast_cache", None)
        if cache is None:
            cache = self._weight_cast_cache = {}
        key = (index, dtype.str)
        entry = cache.get(key)
        if entry is not None and entry[0] is weights:
            return entry[1]
        cast = weights.astype(dtype)
        cast.flags.writeable = False
        cache[key] = (weights, cast)
        return cast

    def forward_batch(
        self,
        frames: Sequence[np.ndarray],
        timesteps: int = 1,
        policy: Optional[NumericsPolicy] = None,
    ) -> BatchNetworkActivity:
        """Run the network on a whole batch of frames in one vectorized pass.

        ``frames`` is a ``(B, H, W, C)`` array (or a sequence of HWC frames,
        which is stacked).  Every frame starts from a fresh zero membrane
        state, exactly like per-frame :meth:`forward` with ``reset=True``;
        the per-frame state kept in :attr:`_states` is not touched, so
        batched and per-frame execution can be interleaved freely.

        The heavy per-layer work — im2row patch extraction, the conv/FC
        matrix products, LIF updates and pooling — runs once per layer and
        timestep over the stacked batch instead of once per frame, which is
        where the batched functional engine's speedup comes from
        (``benchmarks/bench_functional.py``).  Every frame's slice of the
        returned records is bit-for-bit identical to the per-frame loop
        (gated by ``tests/snn/test_forward_batch.py``).

        ``policy`` selects the numerics of the pass
        (:class:`~repro.snn.numerics.NumericsPolicy`); ``None`` means the
        FP64 dense reference, which keeps that bit-for-bit guarantee.  Under
        ``event_sparse`` each non-encoding layer compares its measured input
        spike density against :data:`~repro.snn.reference.SPARSE_DENSITY_CROSSOVER`
        and routes sparse maps through the CSR event kernels, dense maps
        through the GEMM at the policy's dtype — cost follows nnz where that
        actually wins.
        """
        if timesteps <= 0:
            raise ValueError(f"timesteps must be positive, got {timesteps}")
        policy = resolve(policy)
        stacked = np.stack([np.asarray(frame) for frame in frames]) if not isinstance(
            frames, np.ndarray
        ) else np.asarray(frames)
        if stacked.ndim != 4:
            raise ValueError(
                f"frames must stack to a (batch, H, W, C) tensor, got shape {stacked.shape}"
            )
        if stacked.shape[0] == 0:
            raise ValueError("frames must contain at least one frame")
        states = self._batch_states(stacked.shape[0], dtype=policy.dtype)
        activity = BatchNetworkActivity()
        for t in range(timesteps):
            self._forward_timestep_batch(stacked, states, t, activity, policy)
        return activity

    def _forward_timestep_batch(
        self,
        frames: np.ndarray,
        states: Dict[int, LIFState],
        timestep: int,
        activity: BatchNetworkActivity,
        policy: Optional[NumericsPolicy] = None,
    ) -> None:
        """One batched timestep; appends records to ``activity`` in layer order."""
        policy = resolve(policy)
        dtype = policy.dtype
        event_sparse = policy.forward_path == "event_sparse"
        current: np.ndarray = frames
        for index, layer in enumerate(self.layers):
            if layer.kind is LayerKind.CONV:
                weights = self._cast_weights(index, layer.require_weights(), dtype)
                # The encoding layer consumes the real-valued frame (density
                # 1.0 by definition); only spike inputs can ride the event
                # kernels, and only when sparse enough to win.
                if (
                    event_sparse
                    and not layer.encodes_input
                    and spike_density(current) < SPARSE_DENSITY_CROSSOVER
                ):
                    currents = conv2d_hwc_batch_sparse(
                        current, weights, stride=layer.stride,
                        padding=layer.padding, dtype=dtype,
                    )
                else:
                    currents = conv2d_hwc_batch(
                        current, weights, stride=layer.stride,
                        padding=layer.padding, dtype=dtype,
                    )
                state, spikes = lif_step_batch(states[index], currents, layer.lif)
                states[index] = state
                activity.records.append(
                    BatchLayerRecord(
                        layer_index=index,
                        name=layer.name,
                        kind=layer.kind,
                        timestep=timestep,
                        input_shape=self._layer_input_shapes[index],
                        output_shape=self._layer_output_shapes[index],
                        # Spike maps are never mutated, so records may alias
                        # them (asarray) instead of copying per layer.
                        input_spikes=None if layer.encodes_input else np.asarray(current, dtype=bool),
                        input_currents=current if layer.encodes_input else None,
                        output_spikes=spikes,
                    )
                )
                current = spikes
            elif layer.kind is LayerKind.LINEAR:
                flat = np.asarray(current, dtype=bool).reshape(current.shape[0], -1)
                weights = self._cast_weights(index, layer.require_weights(), dtype)
                if event_sparse and spike_density(flat) < SPARSE_DENSITY_CROSSOVER:
                    currents = linear_batch_sparse(flat, weights, dtype=dtype)
                else:
                    currents = linear_batch(current, weights, dtype=dtype)
                state, spikes = lif_step_batch(states[index], currents, layer.lif)
                states[index] = state
                activity.records.append(
                    BatchLayerRecord(
                        layer_index=index,
                        name=layer.name,
                        kind=layer.kind,
                        timestep=timestep,
                        input_shape=self._layer_input_shapes[index],
                        output_shape=self._layer_output_shapes[index],
                        input_spikes=flat,
                        input_currents=None,
                        output_spikes=spikes,
                    )
                )
                current = spikes
            elif layer.kind is LayerKind.MAXPOOL:
                current = maxpool2d_hwc_batch(current, layer.kernel_size, layer.stride)
            elif layer.kind is LayerKind.AVGPOOL:
                current = avgpool2d_hwc_batch(current, layer.kernel_size, layer.stride)
            elif layer.kind is LayerKind.FLATTEN:
                current = np.asarray(current).reshape(current.shape[0], -1)
            else:  # pragma: no cover - defensive
                raise NotImplementedError(f"unsupported layer kind {layer.kind}")

    def predict_batch(
        self,
        frames: Sequence[np.ndarray],
        timesteps: int = 1,
        policy: Optional[NumericsPolicy] = None,
    ) -> np.ndarray:
        """Classify a batch of frames (``(B,)`` class indices) in one pass."""
        activity = self.forward_batch(frames, timesteps=timesteps, policy=policy)
        output_index = self.weighted_layers[-1]
        records = activity.for_layer(output_index)
        counts = np.zeros(
            (activity.batch_size, self._layer_output_shapes[output_index].channels),
            dtype=np.int64,
        )
        for record in records:
            counts += record.output_spikes.astype(np.int64).reshape(counts.shape)
        return np.argmax(counts, axis=1)

    # ------------------------------------------------------------------ #
    # Identity
    # ------------------------------------------------------------------ #
    def fingerprint(self) -> str:
        """Canonical hex digest of the network's architecture and weights.

        Two networks share a fingerprint exactly when every layer's kind,
        geometry, neuron parameters and weight bytes match — which is what
        lets :class:`repro.session.Session` key functional-mode results on
        the network without storing it.

        Hashing S-VGG11's several-hundred-MB of FP64 weights costs real
        time, and the serving path (:mod:`repro.serve`) fingerprints the
        network on *every* request admission, so the *weight-bytes* digest
        is memoized against the identity of the layers' weight arrays: any
        rebinding — :meth:`initialize`, a training step — invalidates it.
        The cheap metadata digest (architecture, every non-weight layer
        field) is recomputed on every call, so mutating e.g. a layer's LIF
        parameters is never masked by the memo.  To keep the weight memo
        sound, every hashed weight array is frozen with
        ``writeable=False``: an in-place mutation after fingerprinting
        raises instead of silently serving a stale digest (which would
        poison the result store).  A weight array that does not own its
        data (a view into some larger buffer) is first replaced by an
        owning copy bound back onto the layer — freezing a shared base
        buffer would make *unrelated* data read-only, and leaving the base
        writable would let mutations dodge the freeze.  Changing weights
        means rebinding (``layer.weights = new_array``), exactly what the
        training loop does.
        """
        meta = hashlib.sha256()
        meta.update(repr((self.name, self.input_shape.as_tuple())).encode())
        weight_arrays = []
        for layer in self.layers:
            described = []
            for field_info in dataclass_fields(layer):
                if field_info.name == "weights":
                    continue
                described.append((field_info.name, repr(getattr(layer, field_info.name))))
            meta.update(repr((type(layer).__name__, sorted(described))).encode())
            weights = getattr(layer, "weights", None)
            if weights is not None:
                if weights.base is not None:
                    # Detach views onto their own copy so the freeze below
                    # can never make a caller's shared buffer read-only.
                    weights = np.array(weights)
                    layer.weights = weights
                weight_arrays.append(weights)
        digest = hashlib.sha256()
        digest.update(meta.hexdigest().encode())
        digest.update(self._weights_digest(tuple(weight_arrays)).encode())
        return digest.hexdigest()

    def _weights_digest(self, weight_arrays) -> str:
        """Memoized digest of the stacked weight bytes (the expensive part)."""
        cached = getattr(self, "_fingerprint_cache", None)
        if cached is not None:
            cached_arrays, cached_digest = cached
            if len(cached_arrays) == len(weight_arrays) and all(
                previous is current
                for previous, current in zip(cached_arrays, weight_arrays)
            ):
                return cached_digest
        digest = hashlib.sha256()
        for weights in weight_arrays:
            digest.update(np.ascontiguousarray(weights).tobytes())
            weights.flags.writeable = False
        # The cache holds strong references to the hashed arrays, so the
        # `is` checks above can never be confused by id reuse.
        self._fingerprint_cache = (weight_arrays, digest.hexdigest())
        return self._fingerprint_cache[1]
