"""Built-in sweep specs and the legacy parallel sweep runner entry point.

The five ablation sweeps are declarative :class:`~repro.plan.SweepSpec`
instances (:data:`SWEEPS`): a named :class:`~repro.plan.ParameterSpace`, a
picklable point function, a row schema and a headline finalizer.  Nothing
here knows *how* points are executed — :func:`run_sweep` resolves the
``jobs``/``backend``/``executor``/``shards`` knobs into a
:class:`repro.backends.ExecutionBackend` and hands the spec to
:func:`repro.plan.collect_plan`.  The same specs are what
:meth:`repro.session.Session.run_plan` streams and what the
``repro.cli sweep``/``plan`` subcommands operate on.

Execution guarantees (inherited from the plan executor and backends):

* **per-point seeding** — every point derives its own seed from the base
  seed, the sweep name and the point's parameters
  (:func:`~repro.plan.point_seed`), so results are independent of
  evaluation order, of which subset of points is requested, and of which
  backend or shard executes them;
* **results cache** — rows are memoized in a
  :class:`~repro.plan.ResultsCache` keyed only on the knobs a sweep
  actually consumes, optionally persisted to JSON;
* **serial fallback** — pool-infrastructure failures degrade to the serial
  path so a sweep always completes, while errors raised by a point itself
  propagate to the caller.

Registering a new sweep takes one :func:`register_sweep` call with a
``SweepSpec`` — see the README's "Defining a new sweep" walkthrough.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional

import numpy as np

from ..backends import make_backend
from ..plan import (
    ParameterSpace,
    PlanRow,
    ResultsCache,
    SweepSpec,
    collect_plan,
    iter_plan,
    point_seed,
)
from ..snn.svgg11 import SVGG11_LAYER_FIRING_RATES
from ..types import Precision
from .experiments import ExperimentResult
from .metrics import ratio
from .sweeps import (
    DEFAULT_CORE_COUNTS,
    DEFAULT_FIRING_RATES,
    DEFAULT_FUNCTIONAL_BATCHES,
    DEFAULT_PRECISIONS,
    DEFAULT_STREAM_LENGTHS,
    DEFAULT_STRIDED_INDIRECT_RATES,
    conv6_spec,
    core_count_point,
    counts_for_rate,
    firing_rate_point,
    fp8_over_fp16_headline,
    functional_point,
    precision_point,
    stream_length_point,
    strided_indirect_point,
)

#: Backwards-compatible name: sweep definitions *are* sweep specs now.
SweepDefinition = SweepSpec


# --------------------------------------------------------------------------- #
# Point tasks (top-level functions so process pools and shards can pickle them)
# --------------------------------------------------------------------------- #
def _run_firing_rate_point(task: Dict[str, object]) -> Dict[str, object]:
    return firing_rate_point(
        task["rate"], Precision.from_name(task["precision"]), seed=task["seed"]
    )


def _run_core_count_point(task: Dict[str, object]) -> Dict[str, object]:
    # Every core count must cost the *same* spike-count map for the sweep to
    # be a strong-scaling study, so the map is drawn from a seed that does
    # not include the core count (see SweepSpec.task_seed / compute_params).
    spec = conv6_spec()
    rng = np.random.default_rng(task["seed"])
    counts = counts_for_rate(spec, task["rate"], rng)
    return core_count_point(task["cores"], counts, Precision.from_name(task["precision"]))


def _run_precision_point(task: Dict[str, object]) -> Dict[str, object]:
    return precision_point(
        Precision.from_name(task["precision"]), batch_size=task["batch"], seed=task["seed"]
    )


def _run_stream_length_point(task: Dict[str, object]) -> Dict[str, object]:
    return stream_length_point(task["length"])


def _run_strided_indirect_point(task: Dict[str, object]) -> Dict[str, object]:
    return strided_indirect_point(
        task["rate"], Precision.from_name(task["precision"]), seed=task["seed"]
    )


def _run_functional_batch_point(task: Dict[str, object]) -> Dict[str, object]:
    return functional_point(
        task["frames"], Precision.from_name(task["precision"]), seed=task["seed"]
    )


def _core_count_finalize(
    rows: List[Dict[str, object]],
    tasks: List[Dict[str, object]],
    run_cached: Callable[[Dict[str, object]], Dict[str, object]],
) -> Dict[str, float]:
    """Anchor strong-scaling efficiency to an explicit 1-core reference.

    Mirrors the fix in :func:`repro.eval.sweeps.core_count_sweep`: when the
    requested points do not include 1 core, the reference is evaluated
    separately on the same spike-count map (same data seed) instead of being
    extrapolated or omitted.  The anchor goes through ``run_cached`` so a
    repeat invocation of a fully cached sweep does not recompute it.
    """
    reference = None
    for row in rows:
        if row["cores"] == 1:
            reference = row["cycles"]
    if reference is None:
        anchor_params = {
            key: value for key, value in tasks[0].items() if key not in ("seed", "batch")
        }
        anchor_params["cores"] = 1
        reference = run_cached(anchor_params)["cycles"]
    for row in rows:
        row["parallel_efficiency"] = ratio(reference, row["cycles"] * row["cores"])
    last = rows[-1]
    return {f"efficiency_at_{last['cores']}_cores": last["parallel_efficiency"]}


# --------------------------------------------------------------------------- #
# The built-in sweep specs
# --------------------------------------------------------------------------- #
SWEEPS: Dict[str, SweepSpec] = {}


def register_sweep(spec: SweepSpec) -> SweepSpec:
    """Register a spec under its name; later registrations replace earlier.

    :mod:`repro.session` additionally mirrors registered sweeps into the
    scenario registry — prefer :func:`repro.session.register_sweep` when the
    sweep should also be reachable via ``Session.run(name)`` and the CLI.
    """
    SWEEPS[spec.name] = spec
    return spec


register_sweep(SweepSpec(
    name="firing_rate",
    description="SpikeStream vs baseline conv6 cycles across input firing rates",
    space=ParameterSpace.grid(rate=DEFAULT_FIRING_RATES, precision=("fp16",)),
    point=_run_firing_rate_point,
    row_schema=("firing_rate", "baseline_cycles", "spikestream_cycles",
                "speedup", "spikestream_fpu_util"),
    finalize=lambda rows, tasks, run_cached: {"max_speedup": max(r["speedup"] for r in rows)},
    kwarg_axes={"rates": "rate", "precision": "precision"},
    normalize={"rate": float},
))

register_sweep(SweepSpec(
    name="core_count",
    description="strong scaling of the conv6 kernel over worker-core counts",
    space=ParameterSpace.grid(
        cores=DEFAULT_CORE_COUNTS,
        rate=(SVGG11_LAYER_FIRING_RATES["conv6"],),
        precision=("fp16",),
    ),
    point=_run_core_count_point,
    row_schema=("cores", "cycles", "fpu_util", "parallel_efficiency"),
    finalize=_core_count_finalize,
    kwarg_axes={"core_counts": "cores", "precision": "precision", "firing_rate": "rate"},
    normalize={"cores": int, "rate": float},
))

register_sweep(SweepSpec(
    name="precision",
    description="full-network runtime at FP32/FP16/FP8",
    space=ParameterSpace.grid(precision=tuple(p.value for p in DEFAULT_PRECISIONS)),
    point=_run_precision_point,
    row_schema=("precision", "simd_width", "runtime_ms", "energy_mj", "fpu_util"),
    finalize=lambda rows, tasks, run_cached: fp8_over_fp16_headline(rows),
    uses_batch=True,
    kwarg_axes={"precisions": "precision"},
))

register_sweep(SweepSpec(
    name="stream_length",
    description="SpVA speedup over the baseline listing across stream lengths",
    space=ParameterSpace.grid(length=DEFAULT_STREAM_LENGTHS),
    point=_run_stream_length_point,
    row_schema=("stream_length", "baseline_cycles", "streaming_cycles", "speedup"),
    finalize=lambda rows, tasks, run_cached: {"asymptotic_speedup": rows[-1]["speedup"]},
    seeded=False,
    kwarg_axes={"lengths": "length"},
    normalize={"length": int},
))

register_sweep(SweepSpec(
    name="strided_indirect",
    description="additional speedup of strided-indirect streams by firing rate",
    space=ParameterSpace.grid(rate=DEFAULT_STRIDED_INDIRECT_RATES, precision=("fp16",)),
    point=_run_strided_indirect_point,
    row_schema=("firing_rate", "spikestream_cycles", "strided_indirect_cycles",
                "additional_speedup", "spikestream_fpu_util",
                "strided_indirect_fpu_util"),
    finalize=lambda rows, tasks, run_cached: {
        "max_additional_speedup": max(r["additional_speedup"] for r in rows)
    },
    kwarg_axes={"rates": "rate", "precision": "precision"},
    normalize={"rate": float},
))


register_sweep(SweepSpec(
    name="functional_batch",
    description="batched functional engine (real spike activity) across frame-batch sizes",
    space=ParameterSpace.grid(frames=DEFAULT_FUNCTIONAL_BATCHES, precision=("fp16",)),
    point=_run_functional_batch_point,
    row_schema=("frames", "total_cycles", "total_energy_mj", "network_fpu_utilization"),
    finalize=lambda rows, tasks, run_cached: {
        "cycles_per_frame_spread": ratio(
            max(r["total_cycles"] for r in rows), min(r["total_cycles"] for r in rows)
        )
    },
    # Every frame count costs the same deterministic network and the same
    # frame-stream prefix (spawned per-frame RNGs are prefix-stable), so the
    # sweep isolates the batch axis instead of resampling data per point.
    compute_params=("frames", "precision"),
    kwarg_axes={"frame_counts": "frames", "precision": "precision"},
    normalize={"frames": int},
))


def available_sweeps() -> List[str]:
    """Names accepted by :func:`run_sweep` and ``repro.cli sweep``."""
    return sorted(SWEEPS)


def get_sweep(name: str) -> SweepSpec:
    """The registered spec for ``name`` (KeyError lists the alternatives)."""
    if name not in SWEEPS:
        raise KeyError(f"unknown sweep {name!r}; available: {', '.join(available_sweeps())}")
    return SWEEPS[name]


def _task_seed(definition: SweepSpec, base_seed: int,
               params: Mapping[str, object]) -> int:
    """Backwards-compatible alias for :meth:`SweepSpec.task_seed`."""
    return definition.task_seed(base_seed, params)


def _execute(
    run_point: Callable[[Dict[str, object]], Dict[str, object]],
    tasks: List[Dict[str, object]],
    jobs: int,
    backend: str,
    executor=None,
) -> List[Dict[str, object]]:
    """Run point tasks through a backend, returning rows in task order.

    Thin bridge kept for callers that predate the backend objects (e.g.
    :meth:`repro.session.Session._run_statistical_many`): the
    dispatch-with-serial-fallback policy now lives in
    :mod:`repro.backends`.  When ``executor`` is given it is used and *not*
    shut down; otherwise ``jobs``/``backend`` pick a private pool.
    """
    rows: List[Optional[Dict[str, object]]] = [None] * len(tasks)
    for index, row in make_backend(backend, jobs=jobs, executor=executor).execute(
        run_point, tasks
    ):
        rows[index] = row
    return rows


def run_sweep(
    name: str,
    jobs: int = 1,
    backend: str = "process",
    seed: int = 2025,
    batch_size: int = 4,
    cache: Optional[ResultsCache] = None,
    executor=None,
    shards: int = 2,
    **point_kwargs,
) -> ExperimentResult:
    """Run one registered sweep, fanning its points over an execution backend.

    Parameters
    ----------
    name:
        A sweep from :func:`available_sweeps`.
    jobs:
        Worker count; ``1`` runs serially (unless ``backend="sharded"``).
    backend:
        ``"process"`` (default), ``"thread"``, ``"serial"`` or
        ``"sharded"`` (partition the points across ``shards`` worker
        sessions).
    seed:
        Base seed; every point derives its own seed via
        :func:`~repro.plan.point_seed`.
    batch_size:
        Batch size of points that run full-network inference (``precision``).
    cache:
        Optional :class:`~repro.plan.ResultsCache`; hits skip the point
        entirely and the cache is saved once at the end of the sweep when
        file-backed.
    executor:
        Optional long-lived :class:`concurrent.futures.Executor` to dispatch
        the points onto instead of creating (and tearing down) a private
        pool; :class:`repro.session.Session` passes its shared pool here.
    shards:
        Worker-session count when ``backend="sharded"``.
    point_kwargs:
        Axis overrides declared by the spec (e.g. ``rates=...``,
        ``core_counts=...``, ``precisions=...``, ``lengths=...``).
    """
    spec = get_sweep(name)
    backend_obj = make_backend(backend, jobs=jobs, executor=executor, shards=shards)
    if cache is not None:
        backend_obj.bind(cache=cache)
    return collect_plan(
        spec, backend_obj, seed=seed, batch_size=batch_size,
        cache=cache, point_kwargs=point_kwargs,
    )


__all__ = [
    "ParameterSpace",
    "PlanRow",
    "ResultsCache",
    "SweepDefinition",
    "SweepSpec",
    "SWEEPS",
    "available_sweeps",
    "collect_plan",
    "get_sweep",
    "iter_plan",
    "point_seed",
    "register_sweep",
    "run_sweep",
]
