"""Parallel sweep runner.

The sweeps in :mod:`repro.eval.sweeps` evaluate their points one after the
other.  This module fans the points of a sweep out over a
:mod:`concurrent.futures` worker pool instead:

* **per-point seeding** — every point derives its own seed from the base
  seed, the sweep name and the point's parameters (see :func:`point_seed`),
  so results are independent of evaluation order, of which subset of points
  is requested, and of how many workers execute them;
* **results cache** — rows are memoized under a key built from the sweep
  name, the point parameters, the seed, the batch size and any extra
  configuration (:class:`ResultsCache`), optionally persisted to a JSON
  file, so repeated invocations (e.g. when refining a figure) skip points
  that were already evaluated;
* **pluggable backend** — points run in a process pool (true parallelism),
  a thread pool, or serially; pool-infrastructure failures fall back to the
  serial path so a sweep always completes, while errors raised by a point
  itself propagate to the caller.

The ``repro.cli sweep`` subcommand is a thin wrapper around
:func:`run_sweep`, with JSON/CSV export through
:mod:`repro.eval.reporting`.
"""

from __future__ import annotations

import hashlib
import json
import pickle
import sys
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..types import Precision
from ..utils.serialization import atomic_write_text, canonical_json
from .experiments import ExperimentResult
from .metrics import ratio
from .sweeps import (
    DEFAULT_CORE_COUNTS,
    DEFAULT_FIRING_RATES,
    DEFAULT_PRECISIONS,
    DEFAULT_STREAM_LENGTHS,
    DEFAULT_STRIDED_INDIRECT_RATES,
    _conv6_spec,
    _counts_for_rate,
    core_count_point,
    firing_rate_point,
    fp8_over_fp16_headline,
    precision_point,
    stream_length_point,
    strided_indirect_point,
)

_SEED_SPACE = 2**63 - 1


def point_seed(base_seed: int, sweep: str, params: Mapping[str, object]) -> int:
    """Deterministic per-point seed derived from the base seed and the point.

    The derivation hashes the sweep name and the *sorted* parameter items,
    so the seed of a point never depends on where it appears in the sweep or
    on which other points run alongside it.
    """
    payload = json.dumps([sweep, sorted(params.items())], sort_keys=True, default=str)
    digest = hashlib.sha256(f"{base_seed}:{payload}".encode()).digest()
    return int.from_bytes(digest[:8], "little") % _SEED_SPACE


class ResultsCache:
    """Memoized sweep-point rows keyed on (config, seed, batch, sweep point).

    The cache is an in-memory dictionary, optionally backed by a JSON file:
    pass ``path`` to load previously persisted rows on construction and call
    :meth:`save` (the runner does) to persist new ones.
    """

    def __init__(self, path: Optional[Path] = None):
        self.path = Path(path) if path is not None else None
        self._rows: Dict[str, Dict[str, object]] = {}
        self._dirty = False
        self.hits = 0
        self.misses = 0
        if self.path is not None and self.path.exists():
            try:
                rows = json.loads(self.path.read_text())
                if not isinstance(rows, dict):
                    raise ValueError("cache root must be a JSON object")
                kept = {k: v for k, v in rows.items() if isinstance(v, dict)}
                if len(kept) != len(rows):
                    print(
                        f"warning: dropped {len(rows) - len(kept)} malformed "
                        f"entr(y/ies) from results cache {self.path}",
                        file=sys.stderr,
                    )
                self._rows = kept
            except (ValueError, OSError) as error:
                # A cache is disposable: a corrupt/unreadable file means the
                # points re-run, it must never crash the sweep.
                print(
                    f"warning: ignoring unreadable results cache {self.path}: {error}",
                    file=sys.stderr,
                )
                self._rows = {}

    @staticmethod
    def key(
        sweep: str,
        params: Mapping[str, object],
        seed: int,
        batch_size: int,
        config: Optional[Mapping[str, object]] = None,
    ) -> str:
        """Stable string key of one sweep point under one configuration."""
        payload = {
            "sweep": sweep,
            "params": sorted(params.items()),
            "seed": seed,
            "batch": batch_size,
            "config": sorted((config or {}).items()),
        }
        # The same canonical encoder serializes keys and the persisted rows
        # (see save()), so equal parameters can never encode differently
        # between the two paths.
        return canonical_json(payload)

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """Cached row for ``key``, or None (updates hit/miss counters)."""
        row = self._rows.get(key)
        if row is None:
            self.misses += 1
            return None
        self.hits += 1
        return dict(row)

    def put(self, key: str, row: Mapping[str, object]) -> None:
        """Store one row under ``key``."""
        self._rows[key] = dict(row)
        self._dirty = True

    def __len__(self) -> int:
        return len(self._rows)

    def save(self) -> None:
        """Persist the cache to its JSON file (no-op for in-memory caches).

        The write is atomic (temp file in the same directory, then
        ``os.replace``), so an interrupted sweep can never leave a
        half-written file that a later load would have to discard.  Like the
        load path, a failure to persist is reported but never raised: the
        sweep's results have already been computed and must still reach the
        caller.
        """
        if self.path is None or not self._dirty:
            return
        try:
            atomic_write_text(self.path, canonical_json(self._rows))
            self._dirty = False
        except OSError as error:
            print(
                f"warning: could not persist results cache {self.path}: {error}",
                file=sys.stderr,
            )


# --------------------------------------------------------------------------- #
# Point tasks (top-level functions so process pools can pickle them)
# --------------------------------------------------------------------------- #
def _run_firing_rate_point(task: Dict[str, object]) -> Dict[str, object]:
    return firing_rate_point(
        task["rate"], Precision.from_name(task["precision"]), seed=task["seed"]
    )


def _run_core_count_point(task: Dict[str, object]) -> Dict[str, object]:
    # Every core count must cost the *same* spike-count map for the sweep to
    # be a strong-scaling study, so the map is drawn from a seed that does
    # not include the core count (see _task_seed).
    spec = _conv6_spec()
    rng = np.random.default_rng(task["seed"])
    counts = _counts_for_rate(spec, task["rate"], rng)
    return core_count_point(task["cores"], counts, Precision.from_name(task["precision"]))


def _run_precision_point(task: Dict[str, object]) -> Dict[str, object]:
    return precision_point(
        Precision.from_name(task["precision"]), batch_size=task["batch"], seed=task["seed"]
    )


def _run_stream_length_point(task: Dict[str, object]) -> Dict[str, object]:
    return stream_length_point(task["length"])


def _run_strided_indirect_point(task: Dict[str, object]) -> Dict[str, object]:
    return strided_indirect_point(
        task["rate"], Precision.from_name(task["precision"]), seed=task["seed"]
    )


# --------------------------------------------------------------------------- #
# Sweep definitions
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SweepDefinition:
    """One parallelizable sweep: its points, point runner and finalizer.

    ``finalize`` receives the collected rows, the executed task dicts (which
    carry each point's derived seed and configuration) and a ``run_cached``
    callable that evaluates one extra point through the results cache; it
    returns the headline and may also add derived columns to the rows.
    """

    name: str
    points: Callable[..., List[Dict[str, object]]]
    run_point: Callable[[Dict[str, object]], Dict[str, object]]
    finalize: Callable[
        [
            List[Dict[str, object]],
            List[Dict[str, object]],
            Callable[[Dict[str, object]], Dict[str, object]],
        ],
        Dict[str, float],
    ]
    #: whether points consume randomness (False keeps the seed out of the
    #: cache key and skips per-point seed derivation)
    seeded: bool = True
    #: whether points consume the batch size (False keeps it out of the key)
    uses_batch: bool = False


def _firing_rate_points(rates: Sequence[float] = DEFAULT_FIRING_RATES,
                        precision: str = "fp16") -> List[Dict[str, object]]:
    return [{"rate": float(r), "precision": precision} for r in rates]


def _core_count_points(core_counts: Sequence[int] = DEFAULT_CORE_COUNTS, precision: str = "fp16",
                       firing_rate: Optional[float] = None) -> List[Dict[str, object]]:
    from ..snn.svgg11 import SVGG11_LAYER_FIRING_RATES

    rate = firing_rate if firing_rate is not None else SVGG11_LAYER_FIRING_RATES["conv6"]
    return [{"cores": int(c), "rate": float(rate), "precision": precision} for c in core_counts]


def _precision_points(precisions: Sequence[str] = tuple(p.value for p in DEFAULT_PRECISIONS),
                      ) -> List[Dict[str, object]]:
    return [{"precision": p} for p in precisions]


def _stream_length_points(lengths: Sequence[int] = DEFAULT_STREAM_LENGTHS,
                          ) -> List[Dict[str, object]]:
    return [{"length": int(n)} for n in lengths]


def _strided_indirect_points(rates: Sequence[float] = DEFAULT_STRIDED_INDIRECT_RATES,
                             precision: str = "fp16") -> List[Dict[str, object]]:
    return [{"rate": float(r), "precision": precision} for r in rates]


def _core_count_finalize(
    rows: List[Dict[str, object]],
    tasks: List[Dict[str, object]],
    run_cached: Callable[[Dict[str, object]], Dict[str, object]],
) -> Dict[str, float]:
    """Anchor strong-scaling efficiency to an explicit 1-core reference.

    Mirrors the fix in :func:`repro.eval.sweeps.core_count_sweep`: when the
    requested points do not include 1 core, the reference is evaluated
    separately on the same spike-count map (same data seed) instead of being
    extrapolated or omitted.  The anchor goes through ``run_cached`` so a
    repeat invocation of a fully cached sweep does not recompute it.
    """
    reference = None
    for row in rows:
        if row["cores"] == 1:
            reference = row["cycles"]
    if reference is None:
        anchor_params = {
            key: value for key, value in tasks[0].items() if key not in ("seed", "batch")
        }
        anchor_params["cores"] = 1
        reference = run_cached(anchor_params)["cycles"]
    for row in rows:
        row["parallel_efficiency"] = ratio(reference, row["cycles"] * row["cores"])
    last = rows[-1]
    return {f"efficiency_at_{last['cores']}_cores": last["parallel_efficiency"]}


SWEEPS: Dict[str, SweepDefinition] = {
    "firing_rate": SweepDefinition(
        name="firing_rate",
        points=_firing_rate_points,
        run_point=_run_firing_rate_point,
        finalize=lambda rows, tasks, run_cached: {"max_speedup": max(r["speedup"] for r in rows)},
    ),
    "core_count": SweepDefinition(
        name="core_count",
        points=_core_count_points,
        run_point=_run_core_count_point,
        finalize=_core_count_finalize,
    ),
    "precision": SweepDefinition(
        name="precision",
        points=_precision_points,
        run_point=_run_precision_point,
        finalize=lambda rows, tasks, run_cached: fp8_over_fp16_headline(rows),
        uses_batch=True,
    ),
    "stream_length": SweepDefinition(
        name="stream_length",
        points=_stream_length_points,
        run_point=_run_stream_length_point,
        finalize=lambda rows, tasks, run_cached: {"asymptotic_speedup": rows[-1]["speedup"]},
        seeded=False,
    ),
    "strided_indirect": SweepDefinition(
        name="strided_indirect",
        points=_strided_indirect_points,
        run_point=_run_strided_indirect_point,
        finalize=lambda rows, tasks, run_cached: {
            "max_additional_speedup": max(r["additional_speedup"] for r in rows)
        },
    ),
}


def available_sweeps() -> List[str]:
    """Names accepted by :func:`run_sweep` and ``repro.cli sweep``."""
    return sorted(SWEEPS)


#: Point parameters that configure the *computation*, not the random input
#: data.  They are excluded from the per-point seed derivation so that e.g.
#: every core count costs the same spike-count map (strong scaling) and
#: every precision runs the same random batch (matched-data speedups).
_COMPUTE_PARAMS = ("cores", "precision")


def _task_seed(definition: SweepDefinition, base_seed: int,
               params: Mapping[str, object]) -> int:
    if not definition.seeded:
        return base_seed
    seed_params = dict(params)
    for key in _COMPUTE_PARAMS:
        seed_params.pop(key, None)
    return point_seed(base_seed, definition.name, seed_params)


def _serial_fallback(run_point, tasks, backend, error):
    print(
        f"warning: {backend} pool failed ({error!r}); running sweep serially",
        file=sys.stderr,
    )
    return [run_point(task) for task in tasks]


def _execute(
    run_point: Callable[[Dict[str, object]], Dict[str, object]],
    tasks: List[Dict[str, object]],
    jobs: int,
    backend: str,
    executor: Optional[Executor] = None,
) -> List[Dict[str, object]]:
    """Run the point tasks, falling back to the serial path on pool failures.

    When ``executor`` is given (e.g. the long-lived pool owned by a
    :class:`repro.session.Session`), the tasks are dispatched onto it and it
    is *not* shut down afterwards — the whole point of sharing one pool
    across sweeps is to amortize worker start-up.  Otherwise a private pool
    is created per call and torn down when the sweep finishes.

    Only pool-*infrastructure* failures trigger the fallback: OSError while
    constructing the pool (e.g. fork refused), and pickling/broken-executor
    errors while dispatching.  An exception raised by a point function (bad
    parameters, model errors) propagates to the caller unchanged — it would
    fail serially too, so re-running everything would only double the work.
    """
    if len(tasks) <= 1:
        return [run_point(task) for task in tasks]
    if executor is not None:
        try:
            return list(executor.map(run_point, tasks))
        except (BrokenExecutor, pickle.PicklingError) as error:
            return _serial_fallback(run_point, tasks, "shared", error)
    if jobs <= 1 or backend == "serial":
        return [run_point(task) for task in tasks]
    pool_cls = ProcessPoolExecutor if backend == "process" else ThreadPoolExecutor
    try:
        pool = pool_cls(max_workers=min(jobs, len(tasks)))
    except (OSError, BrokenExecutor) as error:
        return _serial_fallback(run_point, tasks, backend, error)
    with pool:
        try:
            return list(pool.map(run_point, tasks))
        except (BrokenExecutor, pickle.PicklingError) as error:
            return _serial_fallback(run_point, tasks, backend, error)


def run_sweep(
    name: str,
    jobs: int = 1,
    backend: str = "process",
    seed: int = 2025,
    batch_size: int = 4,
    cache: Optional[ResultsCache] = None,
    executor: Optional[Executor] = None,
    **point_kwargs,
) -> ExperimentResult:
    """Run one registered sweep, fanning its points over a worker pool.

    Parameters
    ----------
    name:
        A sweep from :func:`available_sweeps`.
    jobs:
        Worker count; ``1`` runs serially.
    backend:
        ``"process"`` (default), ``"thread"`` or ``"serial"``.
    seed:
        Base seed; every point derives its own seed via :func:`point_seed`.
    batch_size:
        Batch size of points that run full-network inference (``precision``).
    cache:
        Optional :class:`ResultsCache`; hits skip the point entirely and the
        cache is saved once at the end of the sweep when file-backed.
    executor:
        Optional long-lived :class:`concurrent.futures.Executor` to dispatch
        the points onto instead of creating (and tearing down) a private
        pool; :class:`repro.session.Session` passes its shared pool here.
    point_kwargs:
        Forwarded to the sweep's point generator (e.g. ``rates=...``,
        ``core_counts=...``, ``precisions=...``, ``lengths=...``).
    """
    if name not in SWEEPS:
        raise KeyError(f"unknown sweep {name!r}; available: {', '.join(available_sweeps())}")
    definition = SWEEPS[name]
    points = definition.points(**point_kwargs)
    tasks = []
    for params in points:
        task = dict(params)
        task["seed"] = _task_seed(definition, seed, params)
        task["batch"] = batch_size
        tasks.append(task)

    rows: List[Optional[Dict[str, object]]] = [None] * len(tasks)
    # Only the knobs a sweep actually consumes enter its cache key, so e.g.
    # deterministic sweeps hit the cache regardless of --seed and sweeps
    # that never run full-network inference hit regardless of --batch.
    key_seed = seed if definition.seeded else 0
    key_batch = batch_size if definition.uses_batch else 0
    keys = [
        ResultsCache.key(definition.name, params, key_seed, key_batch)
        for params in points
    ]
    pending = list(range(len(tasks)))
    if cache is not None:
        pending = []
        for index, key in enumerate(keys):
            hit = cache.get(key)
            if hit is not None:
                rows[index] = hit
            else:
                pending.append(index)

    if pending:
        fresh = _execute(
            definition.run_point, [tasks[i] for i in pending], jobs, backend, executor
        )
        for index, row in zip(pending, fresh):
            rows[index] = row
            if cache is not None:
                cache.put(keys[index], row)

    def run_cached(params: Dict[str, object]) -> Dict[str, object]:
        """Evaluate one extra point through the same cache as the sweep points."""
        key = ResultsCache.key(definition.name, params, key_seed, key_batch)
        if cache is not None:
            hit = cache.get(key)
            if hit is not None:
                return hit
        task = dict(params)
        task["seed"] = _task_seed(definition, seed, params)
        task["batch"] = batch_size
        row = definition.run_point(task)
        if cache is not None:
            cache.put(key, row)
        return row

    final_rows: List[Dict[str, object]] = [dict(row) for row in rows]
    # Named distinctly from the sequential sweeps: the per-point seeding
    # produces different (order-independent) draws than the shared-RNG
    # sequential functions, so results keyed by name must never mix.
    try:
        headline = definition.finalize(final_rows, tasks, run_cached)
    finally:
        # One save at the very end covers the sweep points *and* any extra
        # finalize anchors, instead of rewriting the file once per addition;
        # saving in a finally block keeps freshly computed rows persisted
        # even when finalize (or its anchor point) raises.
        if cache is not None:
            cache.save()
    return ExperimentResult(
        name=f"parallel_{definition.name}_sweep",
        figure="sweep",
        rows=final_rows,
        headline=headline,
    )
