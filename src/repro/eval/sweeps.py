"""Parameter sweeps and ablation studies.

These go beyond the paper's figures: they quantify the contribution of each
SpikeStream optimization and the sensitivity of the results to firing rate,
core count, precision and stream length — the design-choice ablations called
out in DESIGN.md.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..arch.params import DEFAULT_CLUSTER, DEFAULT_COSTS, ClusterParams
from ..config import baseline_config, spikestream_config
from ..core.pipeline import SpikeStreamInference
from ..kernels.conv import ConvLayerSpec, conv_layer_perf, pad_counts
from ..kernels.scheduler import workload_stealing_schedule
from ..kernels.spva import baseline_spva_cost, streaming_spva_cost
from ..snn.svgg11 import SVGG11_LAYER_FIRING_RATES
from ..types import Precision, TensorShape
from .experiments import ExperimentResult
from .metrics import ratio


# Default point lists, shared by the sequential sweeps below and the
# parallel runner (repro.eval.runner) so the two entry points cannot drift.
DEFAULT_FIRING_RATES = (0.05, 0.1, 0.2, 0.3, 0.4, 0.5)
DEFAULT_CORE_COUNTS = (1, 2, 4, 8)
DEFAULT_PRECISIONS = (Precision.FP32, Precision.FP16, Precision.FP8)
DEFAULT_STREAM_LENGTHS = (1, 2, 4, 8, 16, 32, 64, 128, 256)
DEFAULT_STRIDED_INDIRECT_RATES = (0.05, 0.1, 0.2, 0.4)


def conv6_spec() -> ConvLayerSpec:
    """The layer used by most sweeps (S-VGG11 conv6: 8x8x512 ifmap, 512 filters)."""
    return ConvLayerSpec(
        name="conv6",
        input_shape=TensorShape(8, 8, 512),
        in_channels=512,
        out_channels=512,
        kernel_size=3,
        stride=1,
        padding=1,
    )


def counts_for_rate(spec: ConvLayerSpec, rate: float, rng: np.random.Generator) -> np.ndarray:
    """A per-pixel spike-count map for ``spec``'s ifmap at firing rate ``rate``."""
    unpadded = spec.input_shape
    counts = rng.binomial(unpadded.channels, rate, size=(unpadded.height, unpadded.width))
    return pad_counts(spec, counts)


#: Former private names of :func:`conv6_spec` / :func:`counts_for_rate`.
#: They were imported across modules (``repro.eval.runner``), so they are now
#: public; the underscore aliases warn once per call site and will go away.
_DEPRECATED_ALIASES = {"_conv6_spec": conv6_spec, "_counts_for_rate": counts_for_rate}


def __getattr__(name: str):
    if name in _DEPRECATED_ALIASES:
        import warnings

        public = _DEPRECATED_ALIASES[name]
        warnings.warn(
            f"repro.eval.sweeps.{name} is deprecated; use {public.__name__}",
            DeprecationWarning,
            stacklevel=2,
        )
        return public
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def firing_rate_point(
    rate: float,
    precision: Precision = Precision.FP16,
    rng: Optional[np.random.Generator] = None,
    seed: int = 2025,
) -> Dict[str, object]:
    """One firing-rate sweep point (baseline vs SpikeStream on conv6).

    Standalone entry point shared by :func:`firing_rate_sweep` (which passes
    its sequentially-advanced ``rng``) and the parallel runner in
    :mod:`repro.eval.runner` (which derives an independent ``seed`` per
    point so results do not depend on evaluation order).
    """
    spec = conv6_spec()
    rng = rng if rng is not None else np.random.default_rng(seed)
    counts = counts_for_rate(spec, rate, rng)
    base = conv_layer_perf(spec, counts, precision, streaming=False)
    stream = conv_layer_perf(spec, counts, precision, streaming=True)
    return {
        "firing_rate": rate,
        "baseline_cycles": base.total_cycles,
        "spikestream_cycles": stream.total_cycles,
        "speedup": ratio(base.total_cycles, stream.total_cycles),
        "spikestream_fpu_util": stream.fpu_utilization,
    }


def firing_rate_sweep(
    rates: Sequence[float] = DEFAULT_FIRING_RATES,
    precision: Precision = Precision.FP16,
    seed: int = 2025,
) -> ExperimentResult:
    """Speedup and utilization of conv6 as a function of the ifmap firing rate."""
    rng = np.random.default_rng(seed)
    rows = [firing_rate_point(rate, precision, rng=rng) for rate in rates]
    return ExperimentResult(
        name="firing_rate_sweep",
        figure="ablation",
        rows=rows,
        headline={"max_speedup": max(r["speedup"] for r in rows)},
    )


def core_count_point(
    cores: int,
    counts: np.ndarray,
    precision: Precision = Precision.FP16,
) -> Dict[str, object]:
    """One strong-scaling point: SpikeStream conv6 on ``cores`` worker cores."""
    spec = conv6_spec()
    params = ClusterParams(num_worker_cores=cores)
    stats = conv_layer_perf(spec, counts, precision, streaming=True, params=params,
                            num_active_cores=cores)
    return {
        "cores": cores,
        "cycles": stats.total_cycles,
        "fpu_util": stats.fpu_utilization,
    }


def core_count_sweep(
    core_counts: Sequence[int] = DEFAULT_CORE_COUNTS,
    precision: Precision = Precision.FP16,
    firing_rate: Optional[float] = None,
    seed: int = 2025,
) -> ExperimentResult:
    """Strong scaling of the SpikeStream conv kernel with the number of cores.

    Parallel efficiency is measured against an *explicit* single-core run of
    the same spike-count map: if ``core_counts`` does not include 1, the
    1-core reference is evaluated separately rather than extrapolated, so the
    efficiency column is meaningful for any core-count subset.
    """
    spec = conv6_spec()
    rate = firing_rate if firing_rate is not None else SVGG11_LAYER_FIRING_RATES["conv6"]
    rng = np.random.default_rng(seed)
    counts = counts_for_rate(spec, rate, rng)
    rows = [core_count_point(cores, counts, precision) for cores in core_counts]
    by_cores = {row["cores"]: row for row in rows}
    if 1 in by_cores:
        reference = by_cores[1]["cycles"]
    else:
        reference = core_count_point(1, counts, precision)["cycles"]
    for row in rows:
        row["parallel_efficiency"] = ratio(reference, row["cycles"] * row["cores"])
    return ExperimentResult(
        name="core_count_sweep",
        figure="ablation",
        rows=rows,
        headline={f"efficiency_at_{core_counts[-1]}_cores": rows[-1]["parallel_efficiency"]},
    )


def precision_point(
    precision: Precision, batch_size: int = 4, seed: int = 2025
) -> Dict[str, object]:
    """One precision sweep point: a full S-VGG11 statistical run."""
    config = spikestream_config(precision, batch_size=batch_size, seed=seed)
    result = SpikeStreamInference(config).run_statistical(batch_size=batch_size, seed=seed)
    return {
        "precision": precision.value,
        "simd_width": precision.simd_width,
        "runtime_ms": result.total_runtime_s * 1e3,
        "energy_mj": result.total_energy_j * 1e3,
        "fpu_util": result.network_fpu_utilization,
    }


def fp8_over_fp16_headline(rows: Sequence[Dict[str, object]]) -> Dict[str, float]:
    """FP8-over-FP16 speedup looked up by precision value.

    Returns an empty headline when either precision is absent instead of
    silently reporting the ratio of whatever happens to occupy the last two
    rows (callers may pass a custom precision order or subset).
    """
    runtimes = {row["precision"]: row["runtime_ms"] for row in rows}
    if "fp16" not in runtimes or "fp8" not in runtimes:
        return {}
    return {"fp8_over_fp16_speedup": ratio(runtimes["fp16"], runtimes["fp8"])}


def precision_sweep(
    precisions: Sequence[Precision] = DEFAULT_PRECISIONS,
    batch_size: int = 4,
    seed: int = 2025,
) -> ExperimentResult:
    """End-to-end S-VGG11 runtime and energy across numeric precisions."""
    rows = [precision_point(precision, batch_size, seed) for precision in precisions]
    return ExperimentResult(
        name="precision_sweep",
        figure="ablation",
        rows=rows,
        headline=fp8_over_fp16_headline(rows),
    )


def stream_length_point(length: int) -> Dict[str, object]:
    """One per-SpVA stream-length point (deterministic; no randomness)."""
    base = baseline_spva_cost(float(length))
    stream = streaming_spva_cost(float(length))
    return {
        "stream_length": int(length),
        "baseline_cycles": float(base.cycles),
        "streaming_cycles": float(stream.cycles),
        "speedup": ratio(float(base.cycles), float(stream.cycles)),
    }


def stream_length_sweep(
    lengths: Sequence[int] = DEFAULT_STREAM_LENGTHS,
) -> ExperimentResult:
    """Per-SpVA speedup of streaming over the baseline as a function of stream length."""
    rows = [stream_length_point(length) for length in lengths]
    return ExperimentResult(
        name="stream_length_sweep",
        figure="ablation",
        rows=rows,
        headline={"asymptotic_speedup": rows[-1]["speedup"]},
    )


def strided_indirect_point(
    rate: float,
    precision: Precision = Precision.FP16,
    rng: Optional[np.random.Generator] = None,
    seed: int = 2025,
) -> Dict[str, object]:
    """One strided-indirect sweep point (standard vs strided-indirect conv6)."""
    spec = conv6_spec()
    rng = rng if rng is not None else np.random.default_rng(seed)
    counts = counts_for_rate(spec, rate, rng)
    standard = conv_layer_perf(spec, counts, precision, streaming=True)
    strided = conv_layer_perf(spec, counts, precision, streaming=True, strided_indirect=True)
    return {
        "firing_rate": rate,
        "spikestream_cycles": standard.total_cycles,
        "strided_indirect_cycles": strided.total_cycles,
        "additional_speedup": ratio(standard.total_cycles, strided.total_cycles),
        "spikestream_fpu_util": standard.fpu_utilization,
        "strided_indirect_fpu_util": strided.fpu_utilization,
    }


def strided_indirect_sweep(
    rates: Sequence[float] = DEFAULT_STRIDED_INDIRECT_RATES,
    precision: Precision = Precision.FP16,
    seed: int = 2025,
) -> ExperimentResult:
    """Projected benefit of the strided-indirect SSR extension (paper future work).

    Compares the standard SpikeStream conv kernel against a variant whose
    gather index array is replayed across SIMD channel groups, on conv6 over
    a range of firing rates.
    """
    rng = np.random.default_rng(seed)
    rows = [strided_indirect_point(rate, precision, rng=rng) for rate in rates]
    return ExperimentResult(
        name="strided_indirect_sweep",
        figure="ablation",
        rows=rows,
        headline={"max_additional_speedup": max(r["additional_speedup"] for r in rows)},
    )


#: Frame-batch sizes swept by the ``functional_batch`` sweep.
DEFAULT_FUNCTIONAL_BATCHES = (1, 2, 4, 8)


def functional_network(seed: int = 2025):
    """A small SVGG-style spiking network for fast functional sweep points.

    Same topology family as S-VGG11 (spike-encoding first conv, max-pooled
    conv stack, FC readout) on a 16x16 input, so a functional sweep point —
    which must run a real forward pass — stays a few milliseconds instead of
    the full network's seconds.  Deterministic in ``seed``.
    """
    from ..snn.layers import Flatten, SpikingConv2d, SpikingLinear, SpikingMaxPool2d
    from ..snn.network import SpikingNetwork
    from ..snn.neuron import LIFParameters

    lif = LIFParameters(alpha=0.9, v_threshold=0.25)
    layers = [
        SpikingConv2d(3, 8, kernel_size=3, padding=1, lif=lif,
                      encodes_input=True, name="conv1"),
        SpikingMaxPool2d(name="pool1"),
        SpikingConv2d(8, 16, kernel_size=3, padding=1, lif=lif, name="conv2"),
        SpikingMaxPool2d(name="pool2"),
        Flatten(name="flatten"),
        SpikingLinear(4 * 4 * 16, 10, lif=lif, name="fc1", is_output=True),
    ]
    network = SpikingNetwork(layers, input_shape=TensorShape(16, 16, 3), name="svgg-small")
    network.initialize(seed)
    return network


def functional_point(
    batch: int,
    precision: Precision = Precision.FP16,
    seed: int = 2025,
) -> Dict[str, object]:
    """One functional-mode run of the small SVGG network at a frame-batch size.

    Builds the deterministic network, records ``batch`` synthetic frames'
    real spike activity through the batched forward pass and costs it with
    the batched functional engine.  Deterministic in ``(batch, precision,
    seed)``, so the row is backend- and shard-invariant.
    """
    from ..snn.datasets import SyntheticCIFAR10

    network = functional_network(seed)
    frames, _ = SyntheticCIFAR10(
        seed=seed, image_shape=TensorShape(16, 16, 3)
    ).sample(batch)
    config = spikestream_config(precision, batch_size=batch, seed=seed)
    result = SpikeStreamInference(config).run_functional(network, frames)
    return {
        "frames": batch,
        "total_cycles": result.total_cycles,
        "total_energy_mj": result.total_energy_j * 1e3,
        "network_fpu_utilization": result.network_fpu_utilization,
    }


def optimization_ablation(batch_size: int = 4, seed: int = 2025) -> ExperimentResult:
    """Contribution of the main SpikeStream design choices.

    Compares four variants of the full S-VGG11 run:

    * the parallel SIMD baseline (TC+TP+DP+DB),
    * the baseline with *static* RF partitioning instead of workload stealing
      (isolates the scheduler's contribution on one layer),
    * SpikeStream (baseline + SA),
    * SpikeStream in FP8 (adds narrower SIMD lanes).
    """
    rows: List[Dict[str, object]] = []
    base_cfg = baseline_config(Precision.FP16, batch_size=batch_size, seed=seed)
    stream_cfg = spikestream_config(Precision.FP16, batch_size=batch_size, seed=seed)
    fp8_cfg = spikestream_config(Precision.FP8, batch_size=batch_size, seed=seed)

    base = SpikeStreamInference(base_cfg).run_statistical(batch_size=batch_size, seed=seed)
    stream = SpikeStreamInference(stream_cfg).run_statistical(batch_size=batch_size, seed=seed)
    fp8 = SpikeStreamInference(fp8_cfg).run_statistical(batch_size=batch_size, seed=seed)

    for label, result in (
        ("baseline FP16 (TC+TP+DP+DB)", base),
        ("SpikeStream FP16 (+SA)", stream),
        ("SpikeStream FP8 (+narrow SIMD)", fp8),
    ):
        rows.append(
            {
                "variant": label,
                "runtime_ms": result.total_runtime_s * 1e3,
                "energy_mj": result.total_energy_j * 1e3,
                "fpu_util": result.network_fpu_utilization,
                "speedup_vs_baseline": ratio(base.total_cycles, result.total_cycles),
            }
        )

    # Workload stealing vs static partitioning on the most imbalanced layer.
    spec = conv6_spec()
    rng = np.random.default_rng(seed)
    counts = counts_for_rate(spec, SVGG11_LAYER_FIRING_RATES["conv6"], rng)
    from ..kernels.conv import window_sum  # local import to avoid cycle at module load

    rf_costs = window_sum(counts, spec.kernel_size, spec.stride).reshape(-1)
    stealing = workload_stealing_schedule(rf_costs, DEFAULT_CLUSTER.num_worker_cores,
                                          DEFAULT_COSTS.atomic_operation_cycles)
    static = workload_stealing_schedule(rf_costs, DEFAULT_CLUSTER.num_worker_cores,
                                        0.0, static=True)
    rows.append(
        {
            "variant": "workload stealing vs static partition (conv6 RF imbalance)",
            "runtime_ms": float("nan"),
            "energy_mj": float("nan"),
            "fpu_util": float("nan"),
            "speedup_vs_baseline": ratio(static.makespan, stealing.makespan),
        }
    )
    return ExperimentResult(
        name="optimization_ablation",
        figure="ablation",
        rows=rows,
        headline={
            "sa_speedup": ratio(base.total_cycles, stream.total_cycles),
            "fp8_speedup": ratio(base.total_cycles, fp8.total_cycles),
            "stealing_gain": rows[-1]["speedup_vs_baseline"],
        },
    )
