"""Experiment drivers regenerating every figure of the paper's evaluation."""

from .metrics import geometric_mean, ratio, summarize
from .reporting import format_table, render_experiment
from .experiments import (
    ExperimentResult,
    accelerator_comparison_experiment,
    energy_experiment,
    memory_footprint_experiment,
    run_svgg11_variants,
    speedup_experiment,
    spva_microbenchmark_experiment,
    utilization_experiment,
)
from .sweeps import (
    core_count_sweep,
    firing_rate_sweep,
    optimization_ablation,
    precision_sweep,
    stream_length_sweep,
    strided_indirect_sweep,
)

__all__ = [
    "geometric_mean",
    "ratio",
    "summarize",
    "format_table",
    "render_experiment",
    "ExperimentResult",
    "accelerator_comparison_experiment",
    "energy_experiment",
    "memory_footprint_experiment",
    "run_svgg11_variants",
    "speedup_experiment",
    "spva_microbenchmark_experiment",
    "utilization_experiment",
    "core_count_sweep",
    "firing_rate_sweep",
    "optimization_ablation",
    "precision_sweep",
    "stream_length_sweep",
    "strided_indirect_sweep",
]
