"""Experiment drivers regenerating every figure of the paper's evaluation.

Besides the per-figure drivers and sequential sweeps, the package exposes the
parallel sweep runner (:func:`run_sweep` / :class:`ResultsCache` in
:mod:`repro.eval.runner`) and machine-readable exports
(:func:`experiment_to_json`, :func:`rows_to_csv`).
"""

from .metrics import geometric_mean, ratio, summarize
from .reporting import experiment_to_json, format_table, render_experiment, rows_to_csv
from .experiments import (
    ExperimentResult,
    accelerator_comparison_experiment,
    energy_experiment,
    memory_footprint_experiment,
    run_svgg11_variants,
    speedup_experiment,
    spva_microbenchmark_experiment,
    utilization_experiment,
)
from .runner import (
    ResultsCache,
    SweepSpec,
    SWEEPS,
    available_sweeps,
    point_seed,
    register_sweep,
    run_sweep,
)
from .sweeps import (
    core_count_sweep,
    firing_rate_sweep,
    optimization_ablation,
    precision_sweep,
    stream_length_sweep,
    strided_indirect_sweep,
)

__all__ = [
    "geometric_mean",
    "ratio",
    "summarize",
    "experiment_to_json",
    "format_table",
    "render_experiment",
    "rows_to_csv",
    "ExperimentResult",
    "accelerator_comparison_experiment",
    "energy_experiment",
    "memory_footprint_experiment",
    "run_svgg11_variants",
    "speedup_experiment",
    "spva_microbenchmark_experiment",
    "utilization_experiment",
    "ResultsCache",
    "SweepSpec",
    "SWEEPS",
    "available_sweeps",
    "point_seed",
    "register_sweep",
    "run_sweep",
    "core_count_sweep",
    "firing_rate_sweep",
    "optimization_ablation",
    "precision_sweep",
    "stream_length_sweep",
    "strided_indirect_sweep",
]
