"""Rendering and export of experiment tables.

The experiments return lists of row dictionaries; :func:`format_table`
renders them as aligned ASCII tables so that the benchmark harness can print
the same rows/series the paper's figures report.  :func:`experiment_to_json`
and :func:`rows_to_csv` provide machine-readable exports used by the
``repro.cli sweep`` subcommand.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List, Optional, Sequence


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(rows: Sequence[Dict[str, object]], columns: Sequence[str] = None) -> str:
    """Render a list of row dictionaries as an aligned ASCII table."""
    rows = list(rows)
    if not rows:
        return "(no data)"
    columns = list(columns) if columns is not None else list(rows[0].keys())
    rendered: List[List[str]] = [[_format_value(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), max(len(cells[i]) for cells in rendered)) for i, col in enumerate(columns)
    ]
    header = " | ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns))
    separator = "-+-".join("-" * width for width in widths)
    body = "\n".join(
        " | ".join(cells[i].ljust(widths[i]) for i in range(len(columns))) for cells in rendered
    )
    return "\n".join([header, separator, body])


def render_experiment(title: str, rows: Sequence[Dict[str, object]],
                      notes: str = "", columns: Sequence[str] = None) -> str:
    """Render an experiment (title, table, optional notes) as text."""
    parts = [f"== {title} ==", format_table(rows, columns)]
    if notes:
        parts.append(notes)
    return "\n".join(parts) + "\n"


def _json_default(value):
    """Coerce numpy scalars (and other oddballs) into plain JSON types."""
    try:
        return float(value)
    except (TypeError, ValueError):
        return str(value)


def experiment_to_json(result, indent: int = 2) -> str:
    """Serialize an :class:`~repro.eval.experiments.ExperimentResult` to JSON.

    The payload carries the experiment ``name``, ``figure`` tag, the full
    ``rows`` list and the ``headline`` aggregates — everything a downstream
    plotting or regression-tracking tool needs.
    """
    payload = {
        "name": result.name,
        "figure": result.figure,
        "rows": list(result.rows),
        "headline": dict(result.headline),
    }
    return json.dumps(payload, indent=indent, default=_json_default)


def rows_to_csv(rows: Sequence[Dict[str, object]],
                columns: Optional[Sequence[str]] = None) -> str:
    """Serialize experiment rows to CSV (header + one line per row)."""
    rows = list(rows)
    if not rows:
        return ""
    columns = list(columns) if columns is not None else list(rows[0].keys())
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=columns, extrasaction="ignore",
                            lineterminator="\n")
    writer.writeheader()
    for row in rows:
        writer.writerow({col: row.get(col, "") for col in columns})
    return buffer.getvalue()


def headline_notes(headline: Dict[str, object]) -> str:
    """The one-line ``headline: k=v, …`` note under rendered tables."""
    if not headline:
        return ""
    return "headline: " + ", ".join(f"{k}={v:.4g}" for k, v in headline.items())


EXPORT_FORMATS = ("table", "json", "csv")


def export_experiment(result, fmt: str = "table", title: Optional[str] = None,
                      columns: Optional[Sequence[str]] = None) -> str:
    """One rendering path for every CLI command that emits an experiment.

    ``fmt`` is ``"table"`` (aligned ASCII + headline note), ``"json"``
    (:func:`experiment_to_json`) or ``"csv"`` (:func:`rows_to_csv` of the
    rows); both ``run --scenario`` and ``sweep`` go through here so the
    formats can never drift between subcommands.
    """
    if fmt == "json":
        return experiment_to_json(result)
    if fmt == "csv":
        return rows_to_csv(result.rows, columns)
    if fmt != "table":
        raise ValueError(f"unknown export format {fmt!r}; expected one of {EXPORT_FORMATS}")
    return render_experiment(
        title or f"{result.figure}: {result.name}",
        result.rows,
        notes=headline_notes(result.headline),
        columns=columns,
    )
