"""Plain-text rendering of experiment tables.

The experiments return lists of row dictionaries; :func:`format_table`
renders them as aligned ASCII tables so that the benchmark harness can print
the same rows/series the paper's figures report.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(rows: Sequence[Dict[str, object]], columns: Sequence[str] = None) -> str:
    """Render a list of row dictionaries as an aligned ASCII table."""
    rows = list(rows)
    if not rows:
        return "(no data)"
    columns = list(columns) if columns is not None else list(rows[0].keys())
    rendered: List[List[str]] = [[_format_value(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), max(len(cells[i]) for cells in rendered)) for i, col in enumerate(columns)
    ]
    header = " | ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns))
    separator = "-+-".join("-" * width for width in widths)
    body = "\n".join(
        " | ".join(cells[i].ljust(widths[i]) for i in range(len(columns))) for cells in rendered
    )
    return "\n".join([header, separator, body])


def render_experiment(title: str, rows: Sequence[Dict[str, object]],
                      notes: str = "", columns: Sequence[str] = None) -> str:
    """Render an experiment (title, table, optional notes) as text."""
    parts = [f"== {title} ==", format_table(rows, columns)]
    if notes:
        parts.append(notes)
    return "\n".join(parts) + "\n"
