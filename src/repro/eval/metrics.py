"""Small metric helpers used by the experiment drivers."""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

import numpy as np


def ratio(numerator: float, denominator: float) -> float:
    """Safe ratio: returns ``inf`` for a zero denominator with non-zero numerator."""
    if denominator == 0:
        return float("inf") if numerator else 1.0
    return numerator / denominator


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (ignores an empty input gracefully)."""
    values = np.asarray(list(values), dtype=np.float64)
    if values.size == 0:
        return 0.0
    if np.any(values <= 0):
        raise ValueError("geometric mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(values))))


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Mean / standard deviation / min / max of a sequence."""
    values = np.asarray(list(values), dtype=np.float64)
    if values.size == 0:
        return {"mean": 0.0, "std": 0.0, "min": 0.0, "max": 0.0}
    return {
        "mean": float(np.mean(values)),
        "std": float(np.std(values)),
        "min": float(np.min(values)),
        "max": float(np.max(values)),
    }
