"""Experiment drivers for every figure in the paper's evaluation section.

Each function regenerates the data series behind one figure:

* :func:`memory_footprint_experiment`        — Figure 3a
* :func:`utilization_experiment`             — Figure 3b
* :func:`speedup_experiment`                 — Figure 3c
* :func:`energy_experiment`                  — Figure 4
* :func:`accelerator_comparison_experiment`  — Figure 5a / 5b
* :func:`spva_microbenchmark_experiment`     — Listing 1 instruction-mix micro-benchmark

The drivers return an :class:`ExperimentResult` whose ``rows`` can be printed
with :func:`repro.eval.reporting.format_table` and whose ``headline`` summary
carries the aggregate numbers quoted in the paper's text (average speedups,
utilization, energy-efficiency gains, ...).

The module-level functions are thin wrappers over the unified
:class:`repro.session.Session` API: each delegates to the default session's
scenario of the same name, so repeated calls share one
:class:`~repro.session.ResultStore` (figure drivers that need the same
S-VGG11 variant runs reuse them instead of re-simulating).  The underlying
``_*_impl`` functions hold the actual driver logic and are what the
session's scenario registry dispatches to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..accelerators.comparison import compare_accelerators
from ..config import RunConfig, baseline_config, spikestream_config
from ..core.results import InferenceResult
from ..formats.footprint import aer_footprint_bytes, csr_footprint_bytes
from ..isa.spva_listings import make_spva_setup, run_baseline_spva, run_streaming_spva
from ..snn.svgg11 import svgg11_layer_shapes
from ..types import Precision
from ..utils.rng import spawn_rngs
from .metrics import ratio


@dataclass
class ExperimentResult:
    """Rows (one per layer / system / sweep point) plus headline aggregates."""

    name: str
    figure: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    headline: Dict[str, float] = field(default_factory=dict)

    def row_for(self, key: str, value: object) -> Dict[str, object]:
        """First row whose column ``key`` equals ``value``."""
        for row in self.rows:
            if row.get(key) == value:
                return row
        raise KeyError(f"no row with {key}={value!r} in experiment {self.name!r}")


# --------------------------------------------------------------------------- #
# Figure 3a: ifmap memory footprint (AER vs CSR) and firing activity
# --------------------------------------------------------------------------- #
def memory_footprint_experiment(
    batch_size: int = 128, seed: int = 2025, index_bytes: int = 2
) -> ExperimentResult:
    """Average ifmap footprint per conv layer under AER and the CSR format."""
    from ..session import default_session

    return default_session().run(
        "memory_footprint", batch_size=batch_size, seed=seed, index_bytes=index_bytes
    )


def _memory_footprint_impl(
    batch_size: int = 128, seed: int = 2025, index_bytes: int = 2
) -> ExperimentResult:
    descriptions = [d for d in svgg11_layer_shapes() if d["kind"] == "conv"]
    rows: List[Dict[str, object]] = []
    reductions: List[float] = []
    rngs = spawn_rngs(seed, batch_size)
    for description in descriptions:
        shape = description["padded_input_shape"]
        unpadded = description["input_shape"]
        rate = description["firing_rate"]
        csr_samples, aer_samples, nnz_samples = [], [], []
        for rng in rngs:
            # Spikes only occur inside the unpadded region; the padding ring
            # contributes pointer entries but no index entries.
            nnz = int(rng.binomial(unpadded.numel, rate))
            nnz_samples.append(nnz)
            csr_samples.append(csr_footprint_bytes(shape, nnz, index_bytes=index_bytes))
            aer_samples.append(aer_footprint_bytes(nnz, index_bytes=index_bytes))
        csr_mean, aer_mean = float(np.mean(csr_samples)), float(np.mean(aer_samples))
        reduction = ratio(aer_mean, csr_mean)
        if description["name"] != "conv1":
            # The first layer's input is the dense RGB image and is not
            # stored in either spike format; exclude it from the average as
            # the paper's figure effectively does.
            reductions.append(reduction)
        rows.append(
            {
                "layer": description["name"],
                "ifmap_shape": str(shape),
                "firing_rate_mean": float(np.mean(nnz_samples)) / unpadded.numel,
                "firing_rate_std": float(np.std(nnz_samples)) / unpadded.numel,
                "aer_bytes_mean": aer_mean,
                "aer_bytes_std": float(np.std(aer_samples)),
                "csr_bytes_mean": csr_mean,
                "csr_bytes_std": float(np.std(csr_samples)),
                "reduction": reduction,
            }
        )
    return ExperimentResult(
        name="memory_footprint",
        figure="fig3a",
        rows=rows,
        headline={"mean_csr_over_aer_reduction": float(np.mean(reductions))},
    )


# --------------------------------------------------------------------------- #
# Shared S-VGG11 runs
# --------------------------------------------------------------------------- #
def svgg11_variant_configs(
    batch_size: int = 16, seed: int = 2025, timesteps: int = 1
) -> Dict[str, RunConfig]:
    """Configurations of the three evaluated variants, keyed by variant name."""
    return {
        "baseline_fp16": baseline_config(Precision.FP16, batch_size=batch_size, seed=seed,
                                         timesteps=timesteps),
        "spikestream_fp16": spikestream_config(Precision.FP16, batch_size=batch_size, seed=seed,
                                               timesteps=timesteps),
        "spikestream_fp8": spikestream_config(Precision.FP8, batch_size=batch_size, seed=seed,
                                              timesteps=timesteps),
    }


def run_svgg11_variants(
    batch_size: int = 16,
    seed: int = 2025,
    firing_rates: Optional[Dict[str, float]] = None,
    timesteps: int = 1,
) -> Dict[str, InferenceResult]:
    """Run the three evaluated variants over the same synthetic batch.

    Returns a dictionary with keys ``baseline_fp16``, ``spikestream_fp16``
    and ``spikestream_fp8``.  Each variant runs through the vectorized batch
    engine (:meth:`~repro.core.pipeline.SpikeStreamInference.run_statistical`)
    and is memoized in the default session's result store, so regenerating
    every figure at the paper's batch size of 128 costs one simulation per
    variant, not one per figure.
    """
    from ..session import default_session

    return default_session().run_variants(
        batch_size=batch_size, seed=seed, firing_rates=firing_rates, timesteps=timesteps
    )


# --------------------------------------------------------------------------- #
# Figure 3b: FPU utilization and IPC per layer (baseline vs SpikeStream, FP16)
# --------------------------------------------------------------------------- #
def utilization_experiment(
    batch_size: int = 16, seed: int = 2025,
    variants: Optional[Dict[str, InferenceResult]] = None,
) -> ExperimentResult:
    """Per-layer FPU utilization and per-core IPC for both FP16 code variants."""
    from ..session import default_session

    return default_session().run(
        "utilization", batch_size=batch_size, seed=seed, variants=variants
    )


def _utilization_impl(variants: Dict[str, InferenceResult]) -> ExperimentResult:
    baseline, spikestream = variants["baseline_fp16"], variants["spikestream_fp16"]
    rows = []
    for base_layer, stream_layer in zip(baseline.layers, spikestream.layers):
        rows.append(
            {
                "layer": base_layer.name,
                "fpu_util_baseline": base_layer.mean_fpu_utilization,
                "fpu_util_spikestream": stream_layer.mean_fpu_utilization,
                "fpu_util_std_spikestream": stream_layer.std_fpu_utilization,
                "ipc_baseline": base_layer.mean_ipc,
                "ipc_spikestream": stream_layer.mean_ipc,
            }
        )
    headline = {
        "network_fpu_util_baseline": baseline.network_fpu_utilization,
        "network_fpu_util_spikestream": spikestream.network_fpu_utilization,
        "encode_fpu_util_baseline": baseline.layers[0].mean_fpu_utilization,
        "encode_fpu_util_spikestream": spikestream.layers[0].mean_fpu_utilization,
        "mean_conv_util_gain": float(
            np.mean(
                [
                    ratio(s.mean_fpu_utilization, b.mean_fpu_utilization)
                    for b, s in zip(baseline.conv_layers[1:], spikestream.conv_layers[1:])
                ]
            )
        ),
    }
    return ExperimentResult(name="utilization", figure="fig3b", rows=rows, headline=headline)


# --------------------------------------------------------------------------- #
# Figure 3c: per-layer speedups
# --------------------------------------------------------------------------- #
def speedup_experiment(
    batch_size: int = 16, seed: int = 2025,
    variants: Optional[Dict[str, InferenceResult]] = None,
) -> ExperimentResult:
    """SpikeStream FP16 over baseline FP16 and SpikeStream FP8 over FP16, per layer."""
    from ..session import default_session

    return default_session().run(
        "speedup", batch_size=batch_size, seed=seed, variants=variants
    )


def _speedup_impl(variants: Dict[str, InferenceResult]) -> ExperimentResult:
    baseline = variants["baseline_fp16"]
    stream16 = variants["spikestream_fp16"]
    stream8 = variants["spikestream_fp8"]
    rows = []
    for base_layer, s16_layer, s8_layer in zip(baseline.layers, stream16.layers, stream8.layers):
        rows.append(
            {
                "layer": base_layer.name,
                "speedup_fp16_over_baseline": ratio(base_layer.mean_cycles, s16_layer.mean_cycles),
                "speedup_fp8_over_fp16": ratio(s16_layer.mean_cycles, s8_layer.mean_cycles),
                "speedup_fp8_over_baseline": ratio(base_layer.mean_cycles, s8_layer.mean_cycles),
            }
        )
    headline = {
        "network_speedup_fp16_over_baseline": ratio(baseline.total_cycles, stream16.total_cycles),
        "network_speedup_fp8_over_fp16": ratio(stream16.total_cycles, stream8.total_cycles),
        "network_speedup_fp8_over_baseline": ratio(baseline.total_cycles, stream8.total_cycles),
        "mean_layer_speedup_fp16_over_baseline": float(
            np.mean([row["speedup_fp16_over_baseline"] for row in rows])
        ),
        "peak_layer_speedup_fp16_over_baseline": float(
            np.max([row["speedup_fp16_over_baseline"] for row in rows])
        ),
    }
    return ExperimentResult(name="speedup", figure="fig3c", rows=rows, headline=headline)


# --------------------------------------------------------------------------- #
# Figure 4: per-layer energy and power
# --------------------------------------------------------------------------- #
def energy_experiment(
    batch_size: int = 16, seed: int = 2025,
    variants: Optional[Dict[str, InferenceResult]] = None,
) -> ExperimentResult:
    """Per-layer energy and power for baseline FP16, SpikeStream FP16 and FP8."""
    from ..session import default_session

    return default_session().run(
        "energy", batch_size=batch_size, seed=seed, variants=variants
    )


def _energy_impl(variants: Dict[str, InferenceResult]) -> ExperimentResult:
    baseline = variants["baseline_fp16"]
    stream16 = variants["spikestream_fp16"]
    stream8 = variants["spikestream_fp8"]
    rows = []
    for base_layer, s16_layer, s8_layer in zip(baseline.layers, stream16.layers, stream8.layers):
        rows.append(
            {
                "layer": base_layer.name,
                "energy_mj_baseline": base_layer.mean_energy_j * 1e3,
                "energy_mj_spikestream_fp16": s16_layer.mean_energy_j * 1e3,
                "energy_mj_spikestream_fp8": s8_layer.mean_energy_j * 1e3,
                "power_w_baseline": base_layer.mean_power_w,
                "power_w_spikestream_fp16": s16_layer.mean_power_w,
                "power_w_spikestream_fp8": s8_layer.mean_power_w,
            }
        )
    conv_rows = [r for r in rows if r["layer"].startswith("conv") and r["layer"] != "conv1"]
    conv_energy = sum(
        r["energy_mj_baseline"] for r in rows if r["layer"].startswith("conv")
    )
    total_energy_base = sum(r["energy_mj_baseline"] for r in rows)
    headline = {
        "mean_power_baseline_conv2_to_8": float(np.mean([r["power_w_baseline"] for r in conv_rows])),
        "mean_power_spikestream_fp16_conv2_to_8": float(
            np.mean([r["power_w_spikestream_fp16"] for r in conv_rows])
        ),
        "mean_power_spikestream_fp8_conv2_to_8": float(
            np.mean([r["power_w_spikestream_fp8"] for r in conv_rows])
        ),
        "conv_energy_fraction_baseline": ratio(conv_energy, total_energy_base),
        "energy_gain_fp16_over_baseline": ratio(
            baseline.total_energy_j, stream16.total_energy_j
        ),
        "energy_gain_fp8_over_baseline": ratio(baseline.total_energy_j, stream8.total_energy_j),
        "energy_gain_fp8_over_fp16": ratio(stream16.total_energy_j, stream8.total_energy_j),
    }
    return ExperimentResult(name="energy", figure="fig4", rows=rows, headline=headline)


# --------------------------------------------------------------------------- #
# Figure 5: comparison with SoA neuromorphic accelerators
# --------------------------------------------------------------------------- #
def accelerator_comparison_experiment(
    timesteps: int = 500, batch_size: int = 4, seed: int = 2025
) -> ExperimentResult:
    """Latency and energy of every system on S-VGG11 layer 6 over 500 timesteps."""
    from ..session import default_session

    return default_session().run(
        "accelerator_comparison", timesteps=timesteps, batch_size=batch_size, seed=seed
    )


def _accelerator_comparison_impl(
    timesteps: int = 500, batch_size: int = 4, seed: int = 2025
) -> ExperimentResult:
    entries = compare_accelerators(timesteps=timesteps, batch_size=batch_size, seed=seed)
    rows = [entry.as_dict() for entry in entries]
    by_name = {entry.name: entry for entry in entries}
    headline = {}
    lsmcore = by_name.get("LSMCore")
    fp8 = by_name.get("SpikeStream FP8")
    fp16 = by_name.get("SpikeStream FP16")
    loihi = by_name.get("Loihi")
    if lsmcore and fp8 and fp16 and loihi:
        headline = {
            "lsmcore_latency_ms": lsmcore.latency_ms,
            "spikestream_fp8_latency_ms": fp8.latency_ms,
            "fp8_slowdown_vs_lsmcore": ratio(fp8.latency_ms, lsmcore.latency_ms),
            "fp16_speedup_vs_loihi": ratio(loihi.latency_ms, fp16.latency_ms),
            "fp8_speedup_vs_loihi": ratio(loihi.latency_ms, fp8.latency_ms),
            "fp16_energy_gain_vs_lsmcore": ratio(lsmcore.energy_mj, fp16.energy_mj),
            "fp8_energy_gain_vs_lsmcore": ratio(lsmcore.energy_mj, fp8.energy_mj),
        }
    return ExperimentResult(
        name="accelerator_comparison", figure="fig5", rows=rows, headline=headline
    )


# --------------------------------------------------------------------------- #
# Listing 1 micro-benchmark
# --------------------------------------------------------------------------- #
def spva_microbenchmark_experiment(
    stream_lengths=(1, 2, 4, 8, 16, 32, 64, 128), seed: int = 2025
) -> ExperimentResult:
    """Instruction-level comparison of the two SpVA listings over stream lengths."""
    from ..session import default_session

    return default_session().run(
        "spva_microbenchmark", stream_lengths=tuple(stream_lengths), seed=seed
    )


def _spva_microbenchmark_impl(
    stream_lengths=(1, 2, 4, 8, 16, 32, 64, 128), seed: int = 2025
) -> ExperimentResult:
    rng = np.random.default_rng(seed)
    rows = []
    for length in stream_lengths:
        weights = rng.normal(size=max(int(length) * 2, 4))
        c_idcs = rng.choice(len(weights), size=int(length), replace=False)
        setup = make_spva_setup(c_idcs, weights)
        value_base, result_base = run_baseline_spva(setup)
        value_stream, result_stream = run_streaming_spva(setup)
        if not np.isclose(value_base, value_stream):
            raise AssertionError("baseline and streaming SpVA disagree functionally")
        rows.append(
            {
                "stream_length": int(length),
                "baseline_cycles": result_base.cycles,
                "streaming_cycles": result_stream.cycles,
                "speedup": ratio(result_base.cycles, result_stream.cycles),
                "baseline_instructions": result_base.instructions,
                "streaming_instructions": result_stream.instructions,
                "baseline_fpu_util": result_base.fpu_utilization,
                "streaming_fpu_util": result_stream.fpu_utilization,
            }
        )
    headline = {
        "asymptotic_speedup": rows[-1]["speedup"],
        "baseline_instructions_per_element": rows[-1]["baseline_instructions"]
        / rows[-1]["stream_length"],
    }
    return ExperimentResult(
        name="spva_microbenchmark", figure="listing1", rows=rows, headline=headline
    )
