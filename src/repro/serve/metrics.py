"""Lightweight telemetry registry of the serving subsystem.

Three instrument kinds cover what a serving deployment watches:

* :class:`Counter` — monotone event counts (requests admitted, rejections,
  store hits);
* :class:`Gauge` — last-written point-in-time values (queue depth, worker
  count);
* :class:`Histogram` — value distributions with percentile summaries
  (request latency, micro-batch size).

All instruments hang off one :class:`MetricsRegistry`, are thread-safe
(every server worker and client thread records into the same registry), and
flatten into a plain-JSON :meth:`MetricsRegistry.snapshot` so telemetry can
be printed, logged or shipped without any external dependency.  *Probes*
(:meth:`MetricsRegistry.add_probe`) pull numbers owned by other components —
e.g. :meth:`repro.session.ResultStore.stats` — into the same snapshot at
read time, so the registry never caches stale copies of someone else's
state.
"""

from __future__ import annotations

import json
import random
import threading
import zlib
from bisect import insort
from typing import Callable, Dict, List, Mapping, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "percentile_of_sorted",
]


class Counter:
    """A monotonically increasing event count."""

    def __init__(self, name: str, lock: threading.RLock):
        self.name = name
        self._lock = lock
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time value; reads return the last write."""

    def __init__(self, name: str, lock: threading.RLock):
        self.name = name
        self._lock = lock
        self._value: float = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


#: Default cap on retained histogram observations.  Beyond it the histogram
#: keeps a uniform random sample (reservoir sampling), so long-lived servers
#: get stable percentile estimates at bounded memory.
_DEFAULT_RESERVOIR = 4096

#: The percentile summaries every histogram reports.
PERCENTILES = (50.0, 95.0, 99.0)


def percentile_of_sorted(ordered: List[float], q: float) -> float:
    """Nearest-rank percentile (0..100) of an already-sorted value list.

    The one shared definition behind :meth:`Histogram.percentile` and
    :meth:`repro.serve.client.LoadReport`'s latency summaries, so the
    telemetry snapshot and the load reports can never compute the same
    statistic two different ways.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1))))
    return ordered[index]


class Histogram:
    """A value distribution with count/sum/min/max and percentile summaries.

    Observations are kept sorted in a bounded reservoir: up to
    ``max_samples`` values verbatim, then a deterministic uniform
    replacement policy (seeded per histogram), so ``percentile`` stays a
    cheap index into a sorted list however long the server runs.
    """

    def __init__(self, name: str, lock: threading.RLock,
                 max_samples: int = _DEFAULT_RESERVOIR):
        if max_samples < 1:
            raise ValueError(f"max_samples must be positive, got {max_samples}")
        self.name = name
        self._lock = lock
        self._max_samples = max_samples
        self._sorted: List[float] = []
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        # Deterministic reservoir replacement (no global RNG state touched;
        # crc32, unlike hash(), is not salted per process, so the same
        # workload retains the same sample across runs).
        self._random = random.Random(zlib.crc32(name.encode()))

    def reset(self) -> None:
        """Discard every observation and re-seed the reservoir RNG.

        Test support: resetting in place is cheaper than rebuilding a whole
        registry, and re-seeding keeps the reservoir deterministic across
        resets exactly as across fresh constructions.
        """
        with self._lock:
            self._sorted = []
            self.count = 0
            self.sum = 0.0
            self.min = None
            self.max = None
            self._random = random.Random(zlib.crc32(self.name.encode()))

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.sum += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)
            if len(self._sorted) < self._max_samples:
                insort(self._sorted, value)
            else:
                # Reservoir sampling: admit with probability k/n, evicting a
                # uniformly chosen retained sample.
                slot = self._random.randrange(self.count)
                if slot < self._max_samples:
                    victim = self._random.randrange(len(self._sorted))
                    self._sorted.pop(victim)
                    insort(self._sorted, value)

    def percentile(self, q: float) -> float:
        """The q-th percentile (0..100) of the retained observations."""
        with self._lock:
            return percentile_of_sorted(self._sorted, q)

    @property
    def mean(self) -> float:
        with self._lock:
            return self.sum / self.count if self.count else 0.0

    def summary(self) -> Dict[str, float]:
        """count/sum/mean/min/max plus the standard percentiles."""
        with self._lock:
            data: Dict[str, float] = {
                "count": self.count,
                "sum": self.sum,
                "mean": self.mean,
                "min": self.min if self.min is not None else 0.0,
                "max": self.max if self.max is not None else 0.0,
            }
            for q in PERCENTILES:
                data[f"p{q:g}"] = self.percentile(q)
            return data


class MetricsRegistry:
    """Named counters, gauges and histograms behind one snapshot.

    Instruments are created on first use (``registry.counter("x")`` both
    creates and returns), so instrumented code never needs a registration
    phase.  A name is permanently bound to its first kind — asking for the
    same name as a different kind raises, catching telemetry typos early.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._instruments: Dict[str, object] = {}
        self._probes: Dict[str, Callable[[], Mapping[str, float]]] = {}

    def _instrument(self, name: str, cls, **kwargs):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise TypeError(
                        f"metric {name!r} is a {type(existing).__name__}, "
                        f"not a {cls.__name__}"
                    )
                return existing
            instrument = cls(name, self._lock, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str) -> Counter:
        return self._instrument(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._instrument(name, Gauge)

    def histogram(self, name: str, max_samples: int = _DEFAULT_RESERVOIR) -> Histogram:
        return self._instrument(name, Histogram, max_samples=max_samples)

    def add_probe(self, name: str, probe: Callable[[], Mapping[str, float]]) -> None:
        """Attach a live stats source flattened into every snapshot.

        ``probe()`` is called at snapshot time and its mapping appears under
        ``{name}.{key}`` — e.g. the result store's
        :meth:`~repro.session.ResultStore.stats` wired in by
        :class:`repro.serve.server.InferenceServer`.
        """
        with self._lock:
            self._probes[name] = probe

    def snapshot(self) -> Dict[str, object]:
        """One flat JSON-serializable view of every instrument and probe."""
        with self._lock:
            data: Dict[str, object] = {}
            for name, instrument in sorted(self._instruments.items()):
                if isinstance(instrument, (Counter, Gauge)):
                    data[name] = instrument.value
                else:
                    data[name] = instrument.summary()
            probes = list(self._probes.items())
        # Probes run outside the registry lock: they may take other locks
        # (e.g. the server's store lock) and must not nest under ours.
        for name, probe in sorted(probes):
            try:
                values = probe()
            except Exception as error:  # a dead probe must not kill telemetry
                data[name] = {"error": repr(error)}
                continue
            data[name] = dict(values)
        return data

    def to_json(self, indent: Optional[int] = None) -> str:
        """The snapshot as a JSON document."""
        return json.dumps(self.snapshot(), sort_keys=True, indent=indent)
