"""Client-side conveniences: blocking calls and an open-loop load generator.

:class:`ServeClient` wraps an in-process :class:`~repro.serve.server.InferenceServer`
with the blocking call shape most callers want (submit + wait, deadline
surfaced as the exception the server recorded).

:class:`LoadGenerator` drives a server the way a benchmark or soak test
needs: **open-loop** arrival — requests fire on a fixed schedule derived
from an arrival rate, regardless of how fast responses come back, so the
server sees genuine concurrency and queue pressure rather than one
request at a time.  Per-request outcomes (latency, rejection, expiry) are
collected into a :class:`LoadReport` whose dictionary form feeds
``benchmarks/bench_serve.py`` and ``repro.cli serve`` with one schema.
"""

from __future__ import annotations

import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .metrics import percentile_of_sorted
from .queue import DeadlineExceeded, QueueFull, ServerClosed
from .server import InferenceServer

__all__ = ["LoadGenerator", "LoadReport", "ServeClient"]


class ServeClient:
    """Blocking facade over an :class:`InferenceServer`."""

    def __init__(self, server: InferenceServer):
        self.server = server

    def run_statistical(self, timeout: Optional[float] = None, **kwargs):
        """Submit one statistical request and wait for its result."""
        return self.server.submit_statistical(**kwargs).result(timeout)

    def run_functional(self, network, frames, timeout: Optional[float] = None, **kwargs):
        """Submit one functional request and wait for its result."""
        return self.server.submit_functional(network, frames, **kwargs).result(timeout)


@dataclass
class LoadReport:
    """Outcome of one open-loop load run."""

    offered: int = 0
    completed: int = 0
    rejected: int = 0
    expired: int = 0
    failed: int = 0
    wall_s: float = 0.0
    latencies_ms: List[float] = field(default_factory=list)

    @property
    def throughput_rps(self) -> float:
        """Completed requests per second of wall-clock."""
        return self.completed / self.wall_s if self.wall_s > 0 else 0.0

    def _percentile(self, q: float) -> float:
        return percentile_of_sorted(sorted(self.latencies_ms), q)

    def to_dict(self) -> Dict[str, float]:
        """Flat JSON-serializable summary (the bench/CLI schema)."""
        return {
            "offered": self.offered,
            "completed": self.completed,
            "rejected": self.rejected,
            "expired": self.expired,
            "failed": self.failed,
            "wall_s": self.wall_s,
            "throughput_rps": self.throughput_rps,
            "latency_p50_ms": self._percentile(50.0),
            "latency_p95_ms": self._percentile(95.0),
            "latency_p99_ms": self._percentile(99.0),
        }


class LoadGenerator:
    """Open-loop request driver against an in-process server.

    ``submit`` is called with the request index (``submit(i)``), performs
    ONE submission against the server and returns its
    :class:`~concurrent.futures.Future` — the caller bakes in mode, frames
    and parameters, typically a closure over
    :meth:`InferenceServer.submit_functional` that picks the i-th frame.
    ``arrival_rate_hz`` spaces submissions ``1/rate`` apart on the wall
    clock; ``None`` fires the whole load as one concurrent burst.
    """

    def __init__(
        self,
        submit: Callable[[int], Future],
        requests: int,
        arrival_rate_hz: Optional[float] = None,
    ):
        if requests < 1:
            raise ValueError(f"requests must be positive, got {requests}")
        if arrival_rate_hz is not None and arrival_rate_hz <= 0:
            raise ValueError(f"arrival_rate_hz must be positive, got {arrival_rate_hz}")
        self.submit = submit
        self.requests = requests
        self.arrival_rate_hz = arrival_rate_hz

    def run(self, timeout_s: float = 300.0) -> LoadReport:
        """Fire the schedule, wait for every future, aggregate a report."""
        report = LoadReport()
        futures: List[Future] = []
        # Latency is stamped by a done-callback the moment each future
        # resolves (worker thread), not when the collection loop below gets
        # around to it — otherwise waiting on future 0 would inflate the
        # measured latency of every future that finished meanwhile.
        latency_ms: Dict[int, float] = {}
        submitted_times: List[float] = []

        def _stamp(slot: int, submitted_at: float):
            def callback(_future: Future) -> None:
                latency_ms[slot] = (time.monotonic() - submitted_at) * 1e3

            return callback

        interval = (
            0.0 if self.arrival_rate_hz is None else 1.0 / self.arrival_rate_hz
        )
        start = time.monotonic()
        for index in range(self.requests):
            if interval > 0.0:
                # Open loop: pace against the schedule, not the last send.
                target = start + index * interval
                delay = target - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
            report.offered += 1
            try:
                future = self.submit(index)
            except QueueFull:
                report.rejected += 1
                continue
            except ServerClosed:
                report.failed += 1
                continue
            submitted_at = time.monotonic()
            submitted_times.append(submitted_at)
            future.add_done_callback(_stamp(len(futures), submitted_at))
            futures.append(future)
        for slot, future in enumerate(futures):
            try:
                future.result(timeout=timeout_s)
            except DeadlineExceeded:
                report.expired += 1
                continue
            except Exception:
                report.failed += 1
                continue
            report.completed += 1
            # The done-callback can still be mid-flight when result()
            # returns; fall back to measuring here (a hair late) if so.
            report.latencies_ms.append(
                latency_ms.get(slot, (time.monotonic() - submitted_times[slot]) * 1e3)
            )
        report.wall_s = time.monotonic() - start
        return report
