"""Concurrent inference service over one shared :class:`repro.session.Session`.

:class:`InferenceServer` is the long-lived front door the ROADMAP's
"serves heavy traffic" north star asks for: callers submit independent
statistical or functional inference requests and receive
:class:`concurrent.futures.Future` objects; inside, N worker threads pull
FIFO micro-batches off a bounded :class:`~repro.serve.queue.RequestQueue`
(admission control: :class:`~repro.serve.queue.QueueFull` when the depth
bound is hit, :class:`~repro.serve.queue.DeadlineExceeded` when a request
expires while queued) and execute them through the
:class:`~repro.serve.batcher.MicroBatcher`, so concurrent single-frame
traffic rides the PR-4 batch engines instead of paying the solo path per
request.

The session's :class:`~repro.session.ResultStore` short-circuits the queue
entirely: a request whose fingerprint is already stored resolves at
admission without ever being queued, and every computed result is stored
under the same fingerprints :meth:`Session.run_inference` /
:meth:`Session.run_functional` use — the server and the direct API share
one cache.

Every stage records into a :class:`~repro.serve.metrics.MetricsRegistry`
(request/rejection/hit counters, queue-depth gauge, batch-size and latency
histograms with p50/p95/p99, plus a live probe of the store's
:meth:`~repro.session.ResultStore.stats`), exposed as one JSON-friendly
snapshot via :meth:`InferenceServer.stats`.

:meth:`InferenceServer.close` drains gracefully by default: admission stops,
accepted requests still execute, workers join.  ``drain=False`` fails
whatever is still queued with :class:`~repro.serve.queue.ServerClosed`.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from typing import Dict, List, Optional

from ..config import RunConfig
from ..obs import Tracer
from ..session import Session
from ..snn.numerics import NumericsPolicy, resolve as resolve_numerics
from .batcher import MicroBatcher, functional_group_key, statistical_group_key
from .metrics import MetricsRegistry
from .queue import (
    InferenceRequest,
    QueueFull,
    RequestQueue,
    ServerClosed,
    resolve_future,
)

__all__ = ["InferenceServer"]


class InferenceServer:
    """Thread-pooled, micro-batching inference service.

    Parameters
    ----------
    session:
        The :class:`~repro.session.Session` whose engines, hardware models
        and result store serve every request.  Omitted: the server creates
        (and owns, and closes) a default session.
    workers:
        Worker-thread count.  Workers collect *disjoint* micro-batches, so
        more workers overlap engine passes of incompatible traffic; one
        worker already micro-batches compatible traffic perfectly.  ``0``
        means no local execution at all: an external dispatcher drains the
        queue instead (the :class:`repro.net.Coordinator` subclass hands
        batches to remote worker processes).
    max_batch / max_wait_ms:
        Micro-batching knobs (see :class:`~repro.serve.batcher.MicroBatcher`):
        flush at ``max_batch`` coalesced frames or after ``max_wait_ms`` of
        collection, whichever comes first.
    max_queue:
        Admission bound of the request queue (backpressure).
    default_deadline_s:
        Deadline applied to requests that do not bring their own; ``None``
        means queued requests never expire.
    default_numerics:
        Golden-model :class:`~repro.snn.numerics.NumericsPolicy` applied to
        functional requests that do not bring their own (``None`` -> the
        FP64 dense reference).  Per-request ``numerics=`` on
        :meth:`submit_functional` overrides it.
    tracer:
        A :class:`repro.obs.Tracer`.  Omitted: a disabled tracer, whose
        hooks cost one attribute test per call site (the ≤2% overhead bar
        ``benchmarks/bench_trace.py`` gates).  An enabled tracer opens a
        root span per sampled request at admission, records
        queue_wait/batch_assembly/engine_pass stage spans through the
        batcher, and feeds ``serve.stage_latency.*`` histograms plus the
        ``obs.trace`` probe into :attr:`metrics`.
    """

    #: A server with no execution threads is a configuration error here;
    #: subclasses that execute elsewhere (the distributed coordinator, whose
    #: workers are remote processes) lower this to 0.
    _MIN_WORKERS = 1

    def __init__(
        self,
        session: Optional[Session] = None,
        workers: int = 2,
        max_batch: int = 16,
        max_wait_ms: float = 5.0,
        max_queue: int = 256,
        default_deadline_s: Optional[float] = None,
        metrics: Optional[MetricsRegistry] = None,
        default_numerics: Optional[NumericsPolicy] = None,
        tracer: Optional[Tracer] = None,
    ):
        if workers < self._MIN_WORKERS:
            raise ValueError(
                f"workers must be >= {self._MIN_WORKERS}, got {workers}"
            )
        self._owns_session = session is None
        self.session = session if session is not None else Session()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.default_deadline_s = default_deadline_s
        self.default_numerics = resolve_numerics(default_numerics)
        self.tracer = tracer if tracer is not None else Tracer()
        self.tracer.bind_metrics(self.metrics)
        self.queue = RequestQueue(max_queue, on_expired=self._on_expired)
        self.batcher = MicroBatcher(
            self.session, max_batch=max_batch, max_wait_ms=max_wait_ms,
            metrics=self.metrics, tracer=self.tracer,
        )
        self.metrics.add_probe("serve.store", self.session.store.stats)
        self.metrics.add_probe("serve.queue", self._queue_stats)
        self.metrics.add_probe("serve.numerics", self._numerics_stats)
        self.metrics.add_probe("obs.trace", self.tracer.stats)
        self.metrics.gauge("serve.workers").set(workers)
        # Mixed-precision observability: a 0/1 gauge flags a non-reference
        # default policy, and per-policy request counters
        # (serve.numerics.requests.<key>) appear as traffic arrives.
        self.metrics.gauge("serve.numerics.non_reference").set(
            0.0 if self.default_numerics.is_reference else 1.0
        )
        # Declare the whole telemetry surface up front so every snapshot has
        # the same keys, zeroed, whether or not an event happened yet.
        for counter in ("serve.requests", "serve.completed", "serve.rejected",
                        "serve.expired", "serve.errors", "serve.cancelled",
                        "serve.store_short_circuits", "serve.batches"):
            self.metrics.counter(counter)
        for histogram in ("serve.latency_ms", "serve.batch_frames",
                          "serve.batch_requests", "serve.batch_collect_ms"):
            self.metrics.histogram(histogram)
        if self.tracer.enabled:
            from ..obs import STAGE_NAMES

            for stage in STAGE_NAMES:
                self.metrics.histogram(f"serve.stage_latency.{stage}")
        self._close_lock = threading.Lock()
        self._closed = False
        self._threads: List[threading.Thread] = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-serve-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- admission ----------------------------------------------------------
    def _queue_stats(self) -> Dict[str, float]:
        return {"depth": self.queue.depth(), "bound": self.queue.maxsize}

    def _on_expired(self, request: InferenceRequest) -> None:
        self.metrics.counter("serve.expired").inc()

    def _numerics_stats(self) -> Dict[str, object]:
        """The active default policy, flattened into every stats snapshot."""
        policy = self.default_numerics
        return {
            "default": policy.key(),
            "precision": policy.precision,
            "forward_path": policy.forward_path,
        }

    def _deadline(self, deadline_s: Optional[float]) -> Optional[float]:
        effective = deadline_s if deadline_s is not None else self.default_deadline_s
        if effective is None:
            return None
        return time.monotonic() + effective

    def _admit(self, request: InferenceRequest) -> Future:
        """Store short-circuit, then bounded enqueue; rejections count."""
        self.metrics.counter("serve.requests").inc()
        # Root span first: the future's done-callback finishes it, so every
        # exit below (store hit, rejection, execution) closes the trace.
        self.tracer.admit(request)
        hit = self.session.store.get(request.fingerprint)
        if hit is not None:
            self.metrics.counter("serve.store_short_circuits").inc()
            resolve_future(request.future, hit)
            self.metrics.histogram("serve.latency_ms").observe(0.0)
            return request.future
        try:
            if self._closed:
                raise ServerClosed("server is closed to new requests")
            self.queue.put(request)
        except (QueueFull, ServerClosed) as error:
            self.metrics.counter("serve.rejected").inc()
            # The caller sees the exception, not the future — but failing
            # the (discarded) future fires its done-callbacks, closing the
            # trace's root span instead of leaking it open.
            resolve_future(request.future, error=error)
            raise
        return request.future

    def submit_statistical(
        self,
        config: Optional[RunConfig] = None,
        batch_size: Optional[int] = None,
        seed: Optional[int] = None,
        firing_rates: Optional[Dict[str, float]] = None,
        timesteps: Optional[int] = None,
        deadline_s: Optional[float] = None,
    ) -> Future:
        """Queue one statistical run; resolves to an ``InferenceResult``.

        Parameter defaults mirror :meth:`Session.run_inference` exactly
        (``None`` falls back to the config's own values), and the result is
        bit-for-bit what that direct call would return.
        """
        config = config if config is not None else self.session.config
        batch_size = batch_size if batch_size is not None else config.batch_size
        seed = seed if seed is not None else config.seed
        timesteps = timesteps if timesteps is not None else config.timesteps
        request = InferenceRequest(
            mode="statistical",
            config=config,
            group_key=statistical_group_key(
                self.session, config, firing_rates, timesteps
            ),
            fingerprint=self.session.fingerprint(
                config, batch_size, firing_rates, seed, timesteps
            ),
            frames_count=batch_size,
            batch_size=batch_size,
            seed=seed,
            timesteps=timesteps,
            firing_rates=firing_rates,
            deadline=self._deadline(deadline_s),
        )
        return self._admit(request)

    def submit_functional(
        self,
        network,
        frames,
        config: Optional[RunConfig] = None,
        firing_rates: Optional[Dict[str, float]] = None,
        deadline_s: Optional[float] = None,
        numerics: Optional[NumericsPolicy] = None,
    ) -> Future:
        """Queue one functional run; resolves to an ``InferenceResult``.

        Mirrors :meth:`Session.run_functional`: the network's real recorded
        activity is costed under ``config`` (the session's default when
        omitted), and compatible concurrent requests share one batched
        forward pass.  ``numerics`` selects the request's golden-model
        policy (default: the server's :attr:`default_numerics`); requests
        under different policies never share a batch or a store entry.
        """
        import numpy as np

        config = config if config is not None else self.session.config
        policy = self.default_numerics if numerics is None else numerics
        stacked = frames if isinstance(frames, np.ndarray) else np.stack(
            [np.asarray(frame) for frame in frames]
        )
        self.metrics.counter(f"serve.numerics.requests.{policy.key()}").inc()
        request = InferenceRequest(
            mode="functional",
            config=config,
            group_key=functional_group_key(
                self.session, config, network, stacked, firing_rates,
                numerics=policy,
            ),
            fingerprint=self.session.functional_fingerprint(
                config, network, stacked, firing_rates, numerics=policy
            ),
            frames_count=int(stacked.shape[0]),
            firing_rates=firing_rates,
            network=network,
            frames=stacked,
            policy=policy,
            deadline=self._deadline(deadline_s),
        )
        return self._admit(request)

    # -- execution ----------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            first = self.queue.pop(timeout=0.05)
            if first is None:
                if self.queue.closed:
                    return
                continue
            batch = self.batcher.collect(self.queue, first)
            try:
                results = self.batcher.execute(batch)
            except Exception as error:
                self.metrics.counter("serve.errors").inc(len(batch))
                for request in batch:
                    resolve_future(request.future, error=error)
                continue
            now = time.monotonic()
            for request, result in zip(batch, results):
                self.session.store.put(request.fingerprint, result)
                self.metrics.histogram("serve.latency_ms").observe(
                    (now - request.enqueued_at) * 1e3
                )
                # A caller may have cancel()ed while the batch ran; the
                # result is still stored, only the delivery is dropped.
                resolve_future(request.future, result)
            self.metrics.counter("serve.completed").inc(len(batch))

    # -- lifecycle ----------------------------------------------------------
    def close(self, drain: bool = True) -> None:
        """Stop admission and shut the workers down (idempotent).

        ``drain=True`` (default) executes everything already accepted before
        returning — no accepted request is ever lost.  ``drain=False`` fails
        queued-but-unstarted requests with
        :class:`~repro.serve.queue.ServerClosed`.  A session created by the
        server is closed with it; an injected session stays open (its caller
        owns it).
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        self.queue.close()
        if not drain:
            cancelled = self.queue.cancel_pending()
            self.metrics.counter("serve.cancelled").inc(cancelled)
        for thread in self._threads:
            thread.join()
        if self._owns_session:
            self.session.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "InferenceServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- observability ------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """One JSON-serializable telemetry snapshot (see module docstring)."""
        return self.metrics.snapshot()
