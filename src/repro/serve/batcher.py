"""Adaptive micro-batching: coalesce compatible requests into one engine pass.

The PR-4 batch engines make *batch* the cheap unit of execution — weight
panels stream once per batch, kernel perf models cost whole stacks — but a
serving workload arrives as many small independent requests.  The
:class:`MicroBatcher` closes that gap:

* requests are **compatible** when they share a configuration fingerprint
  (hardware models, run configuration, firing rates, timesteps, and for
  functional mode the network and frame geometry) — computed once at
  admission from the same canonical fingerprints
  (:meth:`repro.session.Session.fingerprint` /
  :meth:`~repro.session.Session.functional_fingerprint`) that key the
  result store;
* :meth:`MicroBatcher.collect` gathers a FIFO prefix of compatible requests,
  flushing when the batch reaches ``max_batch`` frames, when ``max_wait_ms``
  expires, or as soon as an incompatible request reaches the queue head
  (waiting longer could not grow the batch without reordering);
* :meth:`MicroBatcher.execute` runs the coalesced batch through ONE engine
  pass — statistical requests' per-seed workloads are concatenated with
  :func:`repro.core.pipeline.concat_workloads`, functional requests' frames
  are stacked into one ``forward_batch`` — and **scatters** per-request
  results back out with
  :meth:`~repro.core.results.InferenceResult.frame_slice`.

Because every batched kernel's per-frame rows are invariant to what else
shares the batch (the bit-for-bit M-invariance PR 4 established), each
scattered result is *identical* to what the request would have produced
running alone through :class:`repro.session.Session` — the property
``tests/serve/`` and ``tools/smoke.py`` gate.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

import numpy as np

from ..config import RunConfig
from ..core.pipeline import concat_workloads, layer_profiler
from ..core.results import InferenceResult
from ..obs import Tracer, layer_hook
from ..session import Session
from .metrics import MetricsRegistry
from .queue import InferenceRequest, RequestQueue

__all__ = ["MicroBatcher", "functional_group_key", "statistical_group_key"]

#: Placeholder frames hashed into functional group keys: the key must cover
#: everything *except* the actual frame pixels (config, models, network,
#: firing rates), so compatible requests with different frames coalesce.
_NO_FRAMES = np.zeros((0, 1, 1, 1))


def statistical_group_key(
    session: Session,
    config: RunConfig,
    firing_rates,
    timesteps: int,
) -> str:
    """Compatibility fingerprint of a statistical request.

    Built from :meth:`Session.fingerprint` with the per-request knobs (seed,
    batch size) pinned to placeholders: two requests coalesce exactly when
    they agree on the configuration, the session's hardware models, the
    firing-rate overrides and the timestep count — everything that shapes
    the layer plans and the timestep scaling of one engine pass.
    """
    return "stat:" + session.fingerprint(
        config, batch_size=0, firing_rates=firing_rates, seed=0, timesteps=timesteps
    )


def functional_group_key(
    session: Session,
    config: RunConfig,
    network,
    frames,
    firing_rates,
    numerics=None,
) -> str:
    """Compatibility fingerprint of a functional request.

    :meth:`Session.functional_fingerprint` with the frames pinned to a
    placeholder (the key must NOT cover the pixels), extended with the
    per-frame geometry and dtype so only stackable frames coalesce.  The
    golden-model :class:`~repro.snn.numerics.NumericsPolicy` enters via the
    base fingerprint, so requests under different policies never share a
    batch (a coalesced batch runs one forward pass under one policy).
    """
    stacked = frames if isinstance(frames, np.ndarray) else np.stack(
        [np.asarray(frame) for frame in frames]
    )
    base = session.functional_fingerprint(
        config, network, _NO_FRAMES, firing_rates, numerics=numerics
    )
    return f"func:{base}:{tuple(stacked.shape[1:])}:{stacked.dtype}"


class MicroBatcher:
    """Collect and execute micro-batches of compatible inference requests.

    ``max_batch`` bounds the *frame* count of a batch (a multi-frame request
    admitted last may overshoot it — requests are never split); a batch
    flushes early when ``max_wait_ms`` elapses from collection start or when
    the queue head is incompatible with the batch under construction.
    """

    def __init__(
        self,
        session: Session,
        max_batch: int = 16,
        max_wait_ms: float = 5.0,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be positive, got {max_batch}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be non-negative, got {max_wait_ms}")
        self.session = session
        self.max_batch = max_batch
        self.max_wait_s = max_wait_ms / 1e3
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # A disabled tracer by default: every hook below degrades to one
        # attribute test, so untraced batching stays on the fast path.
        self.tracer = tracer if tracer is not None else Tracer()

    def _record_queue_wait(self, request: InferenceRequest, now: float) -> None:
        """File the request's queue-wait interval at batch-join time.

        The wait starts at admission (``enqueued_at``) — or, after a rescue
        re-dispatch, at the requeue stamp the coordinator left in
        ``trace.wait_from`` (``enqueued_at`` belongs to latency accounting
        and is never restamped by rescues).
        """
        trace = request.trace
        if trace is None or not trace.sampled:
            return
        start = trace.wait_from if trace.wait_from is not None else request.enqueued_at
        self.tracer.record_span(
            "queue_wait", (trace,), start, now,
            parent_id=trace.root_id, request=request.id,
        )

    # -- collection ---------------------------------------------------------
    def collect(
        self, queue: RequestQueue, first: InferenceRequest
    ) -> List[InferenceRequest]:
        """Grow a micro-batch from ``first`` by popping compatible neighbours.

        Flush conditions, in priority order: batch reached ``max_batch``
        frames; an incompatible request is at the queue head (FIFO order is
        preserved — it will seed the next batch); ``max_wait_ms`` elapsed
        with the queue empty.
        """
        requests = [first]
        frames = first.frames_count
        started = time.monotonic()
        deadline = started + self.max_wait_s
        traced = self.tracer.enabled
        joins = [started]
        if traced:
            self._record_queue_wait(first, started)
        while frames < self.max_batch:
            request = queue.pop_matching(first.group_key)
            if request is not None:
                requests.append(request)
                frames += request.frames_count
                if traced:
                    joined = time.monotonic()
                    joins.append(joined)
                    self._record_queue_wait(request, joined)
                continue
            if queue.depth() > 0:
                break  # incompatible head: waiting longer cannot help
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not queue.wait_nonempty(remaining):
                break
        finished = time.monotonic()
        wait_ms = (finished - started) * 1e3
        self.metrics.counter("serve.batches").inc()
        self.metrics.histogram("serve.batch_frames").observe(frames)
        self.metrics.histogram("serve.batch_requests").observe(len(requests))
        self.metrics.histogram("serve.batch_collect_ms").observe(wait_ms)
        if traced:
            # Per-request records, each clamped to the request's own
            # batch-join time: a request admitted mid-collection must not
            # get an assembly span starting before its root.
            for request, joined in zip(requests, joins):
                trace = request.trace
                if trace is None or not trace.sampled:
                    continue
                self.tracer.record_span(
                    "batch_assembly", (trace,), joined, finished,
                    parent_id=trace.root_id,
                    requests=len(requests), frames=frames,
                )
        return requests

    # -- execution ----------------------------------------------------------
    def execute(self, requests: Sequence[InferenceRequest]) -> List[InferenceResult]:
        """One coalesced engine pass; returns per-request results in order.

        All requests must share a ``group_key`` (the server guarantees this
        via :meth:`collect`).  The scatter step slices each request's metric
        rows back out of the batch result — bit-for-bit what the request
        would have produced alone.
        """
        if not requests:
            return []
        first = requests[0]
        if any(r.group_key != first.group_key for r in requests):
            raise ValueError("cannot execute a batch of incompatible requests")
        engine = self.session.engine(first.config)
        ctxs = self.tracer.sampled(requests)
        with self.tracer.span(
            "engine_pass", ctxs, mode=first.mode, requests=len(requests),
        ) as span:
            hook = None
            if ctxs and self.tracer.profile_layers:
                hook = layer_hook(self.tracer, ctxs, span.id)
            with layer_profiler(hook):
                if first.mode == "functional":
                    if len(requests) == 1:
                        stacked = np.asarray(first.frames)
                    else:
                        stacked = np.concatenate(
                            [np.asarray(r.frames) for r in requests], axis=0
                        )
                    batch_result = engine.run_functional(
                        first.network, stacked, firing_rates=first.firing_rates,
                        numerics=first.policy,
                    )
                    # Functional metric rows enumerate (frame, timestep)
                    # frame-major.
                    rows_per_request = [
                        r.frames_count * first.config.timesteps for r in requests
                    ]
                else:
                    plans = engine.optimizer.plan_svgg11(first.firing_rates)
                    workloads = [
                        engine.statistical_workloads(plans, r.batch_size, r.seed)
                        for r in requests
                    ]
                    batch_result = engine.run_workloads(
                        concat_workloads(workloads), timesteps=first.timesteps
                    )
                    rows_per_request = [r.batch_size for r in requests]
        if len(requests) == 1:
            return [batch_result]
        results: List[InferenceResult] = []
        offset = 0
        for rows in rows_per_request:
            results.append(batch_result.frame_slice(offset, offset + rows))
            offset += rows
        return results
