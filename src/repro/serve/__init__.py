"""Concurrent inference serving on top of :class:`repro.session.Session`.

The serving subsystem turns the batched engines of PR 4 into throughput
under concurrent load: independent requests are admission-controlled
through a bounded :class:`~repro.serve.queue.RequestQueue`, coalesced into
micro-batches by the :class:`~repro.serve.batcher.MicroBatcher`, executed
by :class:`~repro.serve.server.InferenceServer` worker threads over one
shared session (result-store hits never even queue), and observed through
a :class:`~repro.serve.metrics.MetricsRegistry`.

Quick start::

    from repro.serve import InferenceServer, ServeClient

    with InferenceServer(workers=2, max_batch=16, max_wait_ms=5) as server:
        futures = [server.submit_statistical(batch_size=1, seed=s)
                   for s in range(64)]
        results = [f.result() for f in futures]      # micro-batched inside
        print(server.stats()["serve.latency_ms"])    # p50/p95/p99 ...

CLI counterpart: ``python -m repro.cli serve --workers 2 --max-batch 16``;
synthetic load benchmark: ``benchmarks/bench_serve.py``.
"""

from .batcher import MicroBatcher, functional_group_key, statistical_group_key
from .client import LoadGenerator, LoadReport, ServeClient
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, percentile_of_sorted
from .queue import (
    DeadlineExceeded,
    InferenceRequest,
    QueueFull,
    RequestQueue,
    ServerClosed,
    resolve_future,
)
from .server import InferenceServer

__all__ = [
    "Counter",
    "DeadlineExceeded",
    "Gauge",
    "Histogram",
    "InferenceRequest",
    "InferenceServer",
    "LoadGenerator",
    "LoadReport",
    "MetricsRegistry",
    "MicroBatcher",
    "QueueFull",
    "RequestQueue",
    "ServeClient",
    "ServerClosed",
    "functional_group_key",
    "percentile_of_sorted",
    "resolve_future",
    "statistical_group_key",
]
