"""Bounded request queue with admission control for the inference service.

The unit of work is an :class:`InferenceRequest`: one statistical or
functional inference payload plus the :class:`concurrent.futures.Future`
its caller is waiting on.  Requests flow through a thread-safe bounded
:class:`RequestQueue`:

* **backpressure** — the queue has a hard depth bound; :meth:`RequestQueue.put`
  on a full queue raises :class:`QueueFull` instead of blocking the caller
  or growing without bound (the server surfaces this as an admission
  rejection, the load generator as a drop);
* **deadlines** — a request may carry an absolute deadline
  (:func:`time.monotonic` seconds); requests that expire while queued are
  failed with :class:`DeadlineExceeded` at pop time and never executed;
* **draining** — :meth:`RequestQueue.close` stops admission while letting
  consumers pop everything already accepted, so a graceful server shutdown
  loses no accepted request; :meth:`RequestQueue.cancel_pending` instead
  fails whatever is left (non-graceful shutdown).

Batching support: :meth:`RequestQueue.pop` returns the head request, and
:meth:`RequestQueue.pop_matching` pops the head *only if* it belongs to a
given compatibility group — the primitive
:class:`repro.serve.batcher.MicroBatcher` builds FIFO-order micro-batches
from.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Optional

__all__ = [
    "DeadlineExceeded",
    "InferenceRequest",
    "QueueFull",
    "RequestQueue",
    "ServerClosed",
    "resolve_future",
]


def resolve_future(future: Future, result: object = None,
                   error: Optional[BaseException] = None) -> bool:
    """Resolve ``future`` with a result or an exception, tolerating cancellation.

    Callers hold plain :class:`concurrent.futures.Future` objects and are
    free to ``cancel()`` one while it is still queued; an unguarded
    ``set_result`` would then raise ``InvalidStateError`` and kill the
    worker thread that was delivering the whole batch.  Returns whether the
    future actually accepted the outcome.
    """
    if future.cancelled():
        return False
    try:
        if error is not None:
            future.set_exception(error)
        else:
            future.set_result(result)
    except InvalidStateError:
        return False  # cancelled (or otherwise resolved) in the window
    return True


class QueueFull(RuntimeError):
    """Admission control rejected a request: the queue is at its depth bound."""


class DeadlineExceeded(RuntimeError):
    """A request's deadline expired before it was executed."""


class ServerClosed(RuntimeError):
    """The server (or queue) no longer accepts new requests."""


_REQUEST_IDS = itertools.count(1)


@dataclass
class InferenceRequest:
    """One queued inference call and the future its caller waits on.

    ``mode`` is ``"statistical"`` (payload: ``batch_size``/``seed``/
    ``timesteps``) or ``"functional"`` (payload: ``network``/``frames``).
    ``config`` and ``firing_rates`` apply to both.  ``group_key`` is the
    compatibility fingerprint under which the micro-batcher may coalesce
    this request with its neighbours; ``fingerprint`` is the request's full
    result-store key.  ``frames_count`` is the number of frames the request
    contributes to a micro-batch (statistical: ``batch_size``; functional:
    ``len(frames)``).  ``policy`` is the functional request's golden-model
    :class:`~repro.snn.numerics.NumericsPolicy` (``None`` -> the FP64 dense
    reference); it is already baked into ``group_key`` and ``fingerprint``,
    so requests with different policies never coalesce or share store
    entries.  ``trace`` is the request's :class:`repro.obs.TraceContext`
    when the server's tracer sampled it (``None`` otherwise); it ships to
    remote workers so their spans stitch into the same trace.
    """

    mode: str
    config: object
    group_key: str
    fingerprint: str
    frames_count: int
    batch_size: int = 1
    seed: Optional[int] = None
    timesteps: int = 1
    firing_rates: Optional[Dict[str, float]] = None
    network: object = None
    frames: object = None
    policy: object = None
    deadline: Optional[float] = None
    trace: object = None
    future: Future = field(default_factory=Future)
    id: int = field(default_factory=lambda: next(_REQUEST_IDS))
    enqueued_at: float = field(default_factory=time.monotonic)

    def expired(self, now: Optional[float] = None) -> bool:
        """Whether the request's deadline has passed."""
        if self.deadline is None:
            return False
        return (time.monotonic() if now is None else now) >= self.deadline


class RequestQueue:
    """Thread-safe bounded FIFO of :class:`InferenceRequest` objects.

    ``maxsize`` is the admission bound; ``on_expired`` (optional) is called
    once for every request failed with :class:`DeadlineExceeded` so the
    server can count rejections without wrapping every pop.
    """

    def __init__(
        self,
        maxsize: int = 256,
        on_expired: Optional[Callable[[InferenceRequest], None]] = None,
    ):
        if maxsize < 1:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self._on_expired = on_expired
        self._items: Deque[InferenceRequest] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False

    # -- producer side ------------------------------------------------------
    def put(self, request: InferenceRequest) -> None:
        """Admit one request or raise (:class:`QueueFull`/:class:`ServerClosed`).

        Never blocks: a full queue is an admission decision the caller must
        see immediately, not a hidden stall.
        """
        with self._lock:
            if self._closed:
                raise ServerClosed("queue is closed to new requests")
            if len(self._items) >= self.maxsize:
                raise QueueFull(
                    f"request queue is at its bound ({self.maxsize}); try again later"
                )
            request.enqueued_at = time.monotonic()
            self._items.append(request)
            self._not_empty.notify()

    def requeue(self, request: InferenceRequest) -> None:
        """Return an already-admitted request to the *head* of the queue.

        The rescue path of a distributed coordinator (:mod:`repro.net`)
        re-dispatches the in-flight batch of a dead or stalled worker; those
        requests were admitted once, so they bypass the depth bound, and they
        go to the front so the rescue still lands inside the original
        deadline.  Works on a closed queue too — a graceful drain must still
        execute rescued requests rather than lose them.
        """
        with self._lock:
            self._items.appendleft(request)
            self._not_empty.notify()

    # -- consumer side ------------------------------------------------------
    def _fail_expired_all(self, requests) -> None:
        """Fail expired requests with :class:`DeadlineExceeded`.

        MUST be called with the queue lock released: resolving a future
        runs its done-callbacks inline, and a callback is allowed to come
        straight back into the queue (e.g. a client resubmitting on
        expiry) — doing that under the non-reentrant lock would deadlock.
        """
        for request in requests:
            resolve_future(
                request.future,
                error=DeadlineExceeded(
                    f"request {request.id} expired before execution"
                ),
            )
            if self._on_expired is not None:
                self._on_expired(request)

    def _take_live_locked(self, expired: list) -> Optional[InferenceRequest]:
        """Pop the first non-expired request; expired ones go into ``expired``."""
        now = time.monotonic()
        while self._items:
            request = self._items.popleft()
            if request.expired(now):
                expired.append(request)
                continue
            return request
        return None

    def pop(self, timeout: Optional[float] = None) -> Optional[InferenceRequest]:
        """The head request, waiting up to ``timeout`` seconds for one.

        Returns ``None`` on timeout or when the queue is closed and fully
        drained.  Expired requests are failed and skipped transparently.
        """
        end = None if timeout is None else time.monotonic() + timeout
        while True:
            expired: list = []
            exhausted = False
            with self._not_empty:
                request = self._take_live_locked(expired)
                if request is None and not expired:
                    if self._closed:
                        exhausted = True
                    else:
                        remaining = None if end is None else end - time.monotonic()
                        if remaining is not None and remaining <= 0:
                            exhausted = True
                        else:
                            self._not_empty.wait(remaining)
            self._fail_expired_all(expired)
            if request is not None:
                return request
            if exhausted:
                return None

    def pop_matching(self, group_key: str) -> Optional[InferenceRequest]:
        """Pop the head request iff it belongs to ``group_key``; else ``None``.

        Expired requests at the head are failed and skipped first, so an
        expired incompatible head can never block a batch.  FIFO order is
        preserved: an incompatible head stays put (and keeps its queue
        position) for the next batching cycle.
        """
        expired: list = []
        with self._lock:
            now = time.monotonic()
            while self._items and self._items[0].expired(now):
                expired.append(self._items.popleft())
            request = None
            if self._items and self._items[0].group_key == group_key:
                request = self._items.popleft()
        self._fail_expired_all(expired)
        return request

    def wait_nonempty(self, timeout: float) -> bool:
        """Block until the queue has an item (or ``timeout``); no popping."""
        with self._not_empty:
            if self._items:
                return True
            if self._closed:
                return False
            self._not_empty.wait(timeout)
            return bool(self._items)

    # -- lifecycle ----------------------------------------------------------
    def close(self) -> None:
        """Stop admission; queued requests remain poppable (graceful drain)."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()

    def cancel_pending(self, error: Optional[Exception] = None) -> int:
        """Fail every queued request (non-graceful shutdown); returns count."""
        with self._lock:
            cancelled = list(self._items)
            self._items.clear()
        # Futures resolve outside the lock (their callbacks may re-enter).
        for request in cancelled:
            resolve_future(
                request.future,
                error=error if error is not None else ServerClosed("server shut down"),
            )
        return len(cancelled)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def depth(self) -> int:
        """Current number of queued requests."""
        with self._lock:
            return len(self._items)

    def __len__(self) -> int:
        return self.depth()
